// Command coreset runs the randomized-composable-coreset pipeline on an
// edge-list graph: it partitions the edges across k simulated machines,
// computes per-machine coresets, composes the final solution and reports
// quality plus communication cost.
//
// Usage:
//
//	coreset -task matching -k 8 -in graph.txt
//	coreset -task vc -k 8 -in graph.txt
//	coreset -task edcs -beta 16 -k 8 -in graph.txt    (EDCS coreset)
//	coreset -task edcs -rounds 3 -k 16 -in graph.txt  (multi-round MPC)
//	coreset -task diversity -k 8 -in graph.txt        (dispersion coreset)
//	coreset -task matching -gen gnp -n 10000 -deg 8   (synthetic input)
//	coreset -task vc -k 8 -stream -in graph.txt       (streaming runtime)
//	coreset -task vc -cluster host:p1,host:p2 -in g   (cluster runtime)
//	coreset -task vc -cluster local -k 4 -in g        (self-spawned workers)
//	coreset ingest -in web.txt -out data/web          (store a dataset)
//	coreset -task matching -k 8 -dataset data/web     (run from the store)
//
// Tasks: matching and vc are the paper's Theorem 1/2 coresets; edcs is the
// edge-degree constrained subgraph coreset of "Coresets Meet EDCS"
// (arXiv:1711.03076), a (3/2+eps)-approximate matching coreset whose degree
// bound is set with -beta; diversity is a randomized composable core-set
// for dispersion maximization in the style of arXiv:1506.06715 (per-machine
// greedy k-center summaries composed by re-running the greedy on their
// union). The accepted task list is the task registry (internal/task) — the
// -task usage string, this paragraph's membership and every runtime's
// dispatch all derive from it, so a newly registered task is available in
// all modes with no change here. With
// -rounds N the EDCS task runs the paper's multi-round MPC algorithm
// (internal/rounds): shard, build per-machine EDCSs, union, reshard with a
// fresh seed and a shrunken machine count, for up to N rounds or until the
// union stops shrinking; the report gains a per-round breakdown, and
// -rounds 1 reproduces the single-round run exactly.
//
// The default (batch) mode materializes the graph and partitions it with a
// single sequential RNG. With -stream the input is never materialized:
// edges flow from the source through a deterministic hash sharder to k
// concurrent machine goroutines, each maintaining its coreset incrementally
// — the shape of a real deployment, where every machine summarizes its share
// in O(n)-ish space as data arrives. Streaming mode reads files and stdin
// incrementally and streams all three generators (gnp, star and powerlaw)
// without ever building the edge list.
//
// With -cluster the machines are separate OS processes: either an existing
// fleet of cmd/coresetworker processes named as comma-separated addresses
// (one machine per address; -k is ignored), or "-cluster local", which
// forks -k workers from this binary and tears them down after the run. The
// sharding seed and per-machine algorithms are identical to -stream, so the
// answers match bit for bit; what changes is that TotalCommBytes in the
// report is measured off the TCP connections (the simulated estimate is
// reported alongside as estCommBytes). The -worker flag is the internal
// worker mode "-cluster local" forks; it serves runs until stdin closes.
//
// With -json the run report is emitted as a single JSON object using the
// same schema (graph.RunReport) the coresetd service returns for jobs, so
// CLI runs and service queries are interchangeable downstream.
//
// With -trace the run logs span events to stderr (run.start/run.end, plus
// per-round spans for -rounds and shard spans for -stream), each stamped
// with a run ID derived deterministically from -seed. Cluster runs ship that
// run ID to every worker in the HELLO frame, so a worker started with
// coresetworker -trace logs spans carrying the same run ID and the two
// streams can be joined by grep.
//
// With -cluster, -trace-out FILE additionally writes the run's timeline as
// Chrome trace-event JSON assembled from the workers' per-machine phase
// telemetry: one process per machine (pid 0 is the coordinator), one track
// per round, with decode/build/encode spans per machine. Load the file in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// The input format is one "u v" edge per line, optionally preceded by a
// header "p <n> <m>"; lines starting with '#' or '%' are comments.
//
// The ingest subcommand converts an edge list (or a generator draw) into an
// on-disk dataset (internal/dataset): segment files of varint-delta encoded
// edge batches under a content-hashed manifest. Ingestion uses the lenient
// SNAP-style parser — tabs, CRLF, comments, self-loops and duplicate edges
// are tolerated, with the drops recorded in the manifest. A stored dataset
// replaces -in/-gen via -dataset DIR in every mode: edges stream off disk
// segment by segment, so the graph is never materialized, and the source is
// restartable, which cluster-mode round replay requires. The same directory
// layout is what cmd/coresetd serves from its -datasets store.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"strings"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/rng"
	rnd "repro/internal/rounds"
	"repro/internal/service"
	"repro/internal/stream"
	"repro/internal/task"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and writes all
// output to the given writers.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "ingest" {
		return runIngest(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("coreset", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		taskName  = fs.String("task", "matching", "problem: "+strings.Join(task.Names(), " | "))
		k         = fs.Int("k", 4, "number of machines")
		beta      = fs.Int("beta", 0, "EDCS degree bound for -task edcs (0 = default)")
		rounds    = fs.Int("rounds", 0, "multi-round MPC: iterate the EDCS sketch for up to N rounds (-task edcs; 0 = single round)")
		in        = fs.String("in", "", "input edge-list file ('-' for stdin)")
		genName   = fs.String("gen", "", "synthetic input: gnp | powerlaw | star")
		n         = fs.Int("n", 10000, "vertices for -gen")
		deg       = fs.Float64("deg", 8, "average degree for -gen")
		dsDir     = fs.String("dataset", "", "input dataset directory (coreset ingest); edges stream off disk")
		seed      = fs.Uint64("seed", 1, "root seed")
		workers   = fs.Int("workers", 0, "max goroutines in batch mode (0 = GOMAXPROCS)")
		streaming = fs.Bool("stream", false, "use the streaming sharded runtime (never materializes the graph)")
		clusterTo = fs.String("cluster", "", "use the cluster runtime: worker addresses host:p1,host:p2,... or 'local' to fork -k workers")
		retries   = fs.Int("max-retries", -1, "cluster only: per-machine, per-round replay budget after a worker failure (-1 = default, 0 = fail fast)")
		workerM   = fs.Bool("worker", false, "internal: run as a cluster worker until stdin closes (used by -cluster local)")
		batch     = fs.Int("batch", 0, "streaming batch size in edges (0 = default)")
		quiet     = fs.Bool("q", false, "print only the summary line")
		jsonOut   = fs.Bool("json", false, "emit the run report as JSON (graph.RunReport schema)")
		traceF    = fs.Bool("trace", false, "log run and round spans to stderr (run ID derived from -seed)")
		traceOut  = fs.String("trace-out", "", "cluster only: write the run timeline as Chrome trace-event JSON to FILE (view in Perfetto)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// One validator for -beta and -rounds across every surface
	// (service.ValidateTaskParams is also what coresetd's job API and
	// cmd/coresetload call): the flags only mean something for tasks whose
	// registry descriptor declares the capability, and each is an error —
	// never a silent fallback or a silently ignored flag — outside its
	// range, with identical message text everywhere.
	if err := service.ValidateTaskParams(*taskName, *beta, *rounds); err != nil {
		fmt.Fprintln(stderr, "coreset:", err)
		return 2
	}
	if *workerM {
		return runWorker(stdout, stderr)
	}
	// The registry is the authority on which tasks exist; the usage string
	// above and this error name the same list, so a newly registered task
	// is accepted (and advertised) with no CLI change.
	desc, ok := task.Get(*taskName)
	if !ok {
		fmt.Fprintf(stderr, "coreset: unknown task %q (known tasks: %s)\n", *taskName, strings.Join(task.Names(), ", "))
		return 2
	}
	if *dsDir != "" && (*in != "" || *genName != "") {
		fmt.Fprintln(stderr, "coreset: -dataset replaces -in/-gen; set only one input")
		return 2
	}
	if *clusterTo == "" && *retries >= 0 {
		fmt.Fprintln(stderr, "coreset: -max-retries requires -cluster (replay only exists in the cluster runtime)")
		return 2
	}
	if *clusterTo == "" && *traceOut != "" {
		fmt.Fprintln(stderr, "coreset: -trace-out requires -cluster (the timeline is built from worker phase telemetry)")
		return 2
	}
	// The tracer derives its run ID from the root seed, so repeated runs of
	// the same configuration produce identical trace streams (modulo
	// durations) — which is what makes the trace output golden-testable.
	var tracer *obs.Tracer
	if *traceF {
		tracer = obs.NewTextTracer(stderr, obs.RunIDFromSeed(*seed))
	}
	mode := "batch"
	switch {
	case *clusterTo != "":
		mode = "cluster"
	case *streaming:
		mode = "stream"
	}
	input := inputSpec{in: *in, genName: *genName, dataset: *dsDir, n: *n, deg: *deg, seed: *seed}
	endRun := tracer.Span("run", "task", *taskName, "mode", mode, "k", *k, "seed", *seed)
	var code int
	switch mode {
	case "cluster":
		code = runCluster(desc, input, *k, *batch, *beta, *rounds, *retries, *clusterTo, *traceOut, *quiet, *jsonOut, tracer, stdout, stderr)
	case "stream":
		code = runStream(desc, input, *k, *batch, *beta, *rounds, *quiet, *jsonOut, tracer, stdout, stderr)
	default:
		code = runBatch(desc, input, *k, *workers, *beta, *rounds, *quiet, *jsonOut, tracer, stdout, stderr)
	}
	endRun("code", code)
	return code
}

// roundsConfig assembles the multi-round driver configuration shared by the
// three runtimes (engaged by -rounds N with N >= 1).
func roundsConfig(k, roundCap int, seed uint64, p edcs.Params, batch, workers int, tr *obs.Tracer) rnd.Config {
	return rnd.Config{K: k, Rounds: roundCap, Seed: seed, Params: p, BatchSize: batch, Workers: workers, Trace: tr}
}

// printRoundStats prints the per-round breakdown of a multi-round run.
func printRoundStats(stdout io.Writer, st *rnd.Stats, measured bool) {
	label := "est"
	if measured {
		label = "measured"
	}
	fmt.Fprintf(stdout, "rounds: %d of %d (cap); total comm %d bytes (%s)\n",
		st.RoundsRun, st.RoundCap, st.TotalCommBytes, label)
	for _, rs := range st.Rounds {
		fmt.Fprintf(stdout, "  round %d: k=%d input=%d union=%d comm=%d bytes\n",
			rs.Round, rs.K, rs.InputEdges, rs.UnionEdges, rs.TotalCommBytes)
		if rs.Retries > 0 {
			fmt.Fprintf(stdout, "    recovery: %d replay attempts, machines replayed %v\n",
				rs.Retries, rs.ReplayedMachines)
		}
		printMachineStats(stdout, rs.MachineStats, "    ")
	}
}

// printMachineStats prints the per-machine phase telemetry the workers
// reported in their TELEM frames (cluster runs only; empty elsewhere).
func printMachineStats(stdout io.Writer, ms []graph.MachineStats, indent string) {
	for _, m := range ms {
		replayed := ""
		if m.Replayed {
			replayed = " (replayed)"
		}
		fmt.Fprintf(stdout, "%smachine %d: decode %.2fms build %.2fms encode %.2fms; %d edges in, %d repair iters, %d removals, peak |H| %d%s\n",
			indent, m.Machine, m.DecodeMS, m.BuildMS, m.EncodeMS, m.EdgesIn, m.RepairIters, m.Removals, m.PeakCoreset, replayed)
	}
}

// emitReport writes the JSON run report, the CLI's machine-readable output.
func emitReport(stdout io.Writer, rep *graph.RunReport) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return 1
	}
	return 0
}

func runBatch(d *task.Descriptor, input inputSpec, k, workers, beta, rounds int, quiet, jsonOut bool, tracer *obs.Tracer, stdout, stderr io.Writer) int {
	seed := input.seed
	g, err := loadGraph(input)
	if err != nil {
		fmt.Fprintln(stderr, "coreset:", err)
		return 1
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintln(stderr, "coreset: invalid input:", err)
		return 1
	}
	if !quiet && !jsonOut {
		fmt.Fprintf(stdout, "graph: n=%d m=%d, k=%d machines\n", g.N, g.M(), k)
	}

	p := task.Params{}
	if d.UsesBeta {
		p.EDCS = edcs.ParamsForBeta(beta)
	}
	if rounds >= 1 {
		// Validation already restricted -rounds to the rounds-capable task.
		m, st, err := rnd.Batch(g, roundsConfig(k, rounds, seed, p.EDCS, 0, workers, tracer))
		if err != nil {
			fmt.Fprintln(stderr, "coreset:", err)
			return 1
		}
		if err := matching.Verify(g.N, g.Edges, m); err != nil {
			fmt.Fprintln(stderr, "coreset: internal error:", err)
			return 1
		}
		if jsonOut {
			return emitReport(stdout, st.Report("batch", seed, m.Size(), p.EDCS.Beta))
		}
		if !quiet {
			printRoundStats(stdout, st, false)
		}
		fmt.Fprintf(stdout, "%s: %d %s (multi-round, %d rounds, %d machines)\n",
			d.SolutionNoun, m.Size(), d.SolutionUnit, st.RoundsRun, k)
		return 0
	}
	start := time.Now()
	sol, st := d.Batch(g, k, workers, seed, p)
	dur := time.Since(start)
	if d.Verify != nil {
		if err := d.Verify(g.N, g.Edges, sol); err != nil {
			fmt.Fprintln(stderr, "coreset: internal error:", err)
			return 1
		}
	}
	if jsonOut {
		rep := st.Report(d.Name, g.N, g.M(), seed, sol.Size, dur)
		if d.UsesBeta {
			rep.Beta = p.EDCS.Beta
		}
		return emitReport(stdout, rep)
	}
	if !quiet {
		if d.FixedLabel != "" {
			fmt.Fprintf(stdout, "%s: %v\n", d.FixedLabel, st.CoresetFixed)
		}
		fmt.Fprintf(stdout, "%s: %v\n", d.CoresetLabel, st.CoresetEdges)
		fmt.Fprintf(stdout, "communication: total %d bytes, max machine %d bytes\n",
			st.TotalCommBytes, st.MaxMachineBytes)
	}
	fmt.Fprintf(stdout, "%s: %d %s (distributed, %d machines)\n", d.SolutionNoun, sol.Size, d.SolutionUnit, k)
	return 0
}

func runStream(d *task.Descriptor, input inputSpec, k, batch, beta, rounds int, quiet, jsonOut bool, tracer *obs.Tracer, stdout, stderr io.Writer) int {
	seed := input.seed
	src, closeSrc, err := openSource(input)
	if err != nil {
		fmt.Fprintln(stderr, "coreset:", err)
		return 1
	}
	if closeSrc != nil {
		defer closeSrc()
	}
	cfg := stream.Config{K: k, Seed: seed, BatchSize: batch, Trace: tracer}

	p := task.Params{}
	if d.UsesBeta {
		p.EDCS = edcs.ParamsForBeta(beta)
	}
	if rounds >= 1 {
		m, st, err := rnd.Stream(context.Background(), src, roundsConfig(k, rounds, seed, p.EDCS, batch, 0, tracer))
		if err != nil {
			fmt.Fprintln(stderr, "coreset:", err)
			return 1
		}
		if jsonOut {
			return emitReport(stdout, st.Report("stream", seed, m.Size(), p.EDCS.Beta))
		}
		if !quiet {
			printRoundStats(stdout, st, false)
		}
		fmt.Fprintf(stdout, "%s: %d %s (multi-round streamed, %d rounds, %d machines)\n",
			d.SolutionNoun, m.Size(), d.SolutionUnit, st.RoundsRun, k)
		return 0
	}
	sol, st, err := stream.Solve(context.Background(), src, cfg, d, p)
	if err != nil {
		fmt.Fprintln(stderr, "coreset:", err)
		return 1
	}
	if jsonOut {
		rep := st.Report(d.Name, seed, sol.Size)
		if d.UsesBeta {
			rep.Beta = p.EDCS.Beta
		}
		return emitReport(stdout, rep)
	}
	if !quiet {
		printStreamStats(stdout, st)
		if d.FixedLabel != "" {
			fmt.Fprintf(stdout, "%s: %v\n", d.FixedLabel, st.CoresetFixed)
		}
		fmt.Fprintf(stdout, "%s: %v\n", d.CoresetLabel, st.CoresetEdges)
		if d.ShowStored {
			fmt.Fprintf(stdout, "stored vs received per machine: %v / %v\n", st.StoredEdges, st.PartEdges)
		}
		if d.LiveLabel != "" {
			fmt.Fprintf(stdout, "%s: %v\n", d.LiveLabel, st.Live)
		}
	}
	fmt.Fprintf(stdout, "%s: %d %s (streamed, %d machines)\n", d.SolutionNoun, sol.Size, d.SolutionUnit, k)
	return 0
}

// runWorker is the internal worker mode "-cluster local" forks: serve runs
// on an ephemeral loopback port, announce it with the ready line, and drain
// when the parent closes our stdin.
func runWorker(stdout, stderr io.Writer) int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(stderr, "coreset: worker listen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s%s\n", cluster.ReadyPrefix, ln.Addr())
	w := cluster.NewWorker(log.New(stderr, "coreset-worker: ", 0))
	go func() {
		_, _ = io.Copy(io.Discard, os.Stdin) // parent closing the pipe is our stop signal
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = w.Shutdown(ctx)
	}()
	if err := w.Serve(ln); err != nil {
		fmt.Fprintln(stderr, "coreset: worker:", err)
		return 1
	}
	return 0
}

// resolveCluster turns the -cluster flag into worker addresses, forking a
// local fleet when asked. The returned cleanup (possibly nil) tears the
// fleet down.
func resolveCluster(spec string, k int, stderr io.Writer) (addrs []string, cleanup func(), err error) {
	if spec != "local" {
		addrs, err := cluster.ParseWorkerList(spec)
		return addrs, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("-cluster local: %w", err)
	}
	lw, err := cluster.SpawnLocal(exe, []string{"-worker"}, k, stderr)
	if err != nil {
		return nil, nil, err
	}
	return lw.Addrs(), func() { _ = lw.Close() }, nil
}

func runCluster(d *task.Descriptor, input inputSpec, k, batch, beta, rounds, retries int, spec, traceOut string, quiet, jsonOut bool, tracer *obs.Tracer, stdout, stderr io.Writer) int {
	seed := input.seed
	addrs, cleanup, err := resolveCluster(spec, k, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "coreset:", err)
		return 1
	}
	if cleanup != nil {
		defer cleanup()
	}
	src, closeSrc, err := openSource(input)
	if err != nil {
		fmt.Fprintln(stderr, "coreset:", err)
		return 1
	}
	if closeSrc != nil {
		defer closeSrc()
	}
	k = len(addrs) // one machine per worker address
	if retries < 0 {
		retries = cluster.DefaultMaxRetries // -1 means unset: replay on by default
	}
	// The run ID shipped to every worker in the HELLO frame is the same
	// seed-derived ID -trace stamps on coordinator spans, so worker-side
	// trace streams join the coordinator's without coordination.
	cfg := cluster.Config{Workers: addrs, Seed: seed, BatchSize: batch, MaxRetries: retries, RunID: obs.RunIDFromSeed(seed)}
	ctx := context.Background()

	// emit finishes a successful run: the Perfetto timeline first (it must
	// be written even for -q and -json runs), then the JSON report when
	// asked. Returns the exit code, or -1 to continue with text output.
	emit := func(rep *graph.RunReport) int {
		if traceOut != "" {
			if err := writeChromeTrace(traceOut, rep); err != nil {
				fmt.Fprintln(stderr, "coreset:", err)
				return 1
			}
		}
		if jsonOut {
			return emitReport(stdout, rep)
		}
		return -1
	}

	p := task.Params{}
	if d.UsesBeta {
		p.EDCS = edcs.ParamsForBeta(beta)
	}
	if rounds >= 1 {
		m, st, err := rnd.Cluster(ctx, src, cfg, roundsConfig(k, rounds, seed, p.EDCS, batch, 0, tracer))
		if err != nil {
			fmt.Fprintln(stderr, "coreset:", err)
			return 1
		}
		if code := emit(st.Report("cluster", seed, m.Size(), p.EDCS.Beta)); code >= 0 {
			return code
		}
		if !quiet {
			printRoundStats(stdout, st, true)
		}
		fmt.Fprintf(stdout, "%s: %d %s (multi-round cluster, %d rounds, %d machines)\n",
			d.SolutionNoun, m.Size(), d.SolutionUnit, st.RoundsRun, k)
		return 0
	}
	sol, st, err := cluster.Solve(ctx, src, cfg, d, p)
	if err != nil {
		fmt.Fprintln(stderr, "coreset:", err)
		return 1
	}
	rep := st.Report(d.Name, seed, sol.Size)
	if d.UsesBeta {
		rep.Beta = p.EDCS.Beta
	}
	if code := emit(rep); code >= 0 {
		return code
	}
	if !quiet {
		printClusterStats(stdout, st)
		if d.FixedLabel != "" {
			fmt.Fprintf(stdout, "%s: %v\n", d.FixedLabel, st.CoresetFixed)
		}
		fmt.Fprintf(stdout, "%s: %v\n", d.CoresetLabel, st.CoresetEdges)
	}
	fmt.Fprintf(stdout, "%s: %d %s (cluster, %d machines)\n", d.SolutionNoun, sol.Size, d.SolutionUnit, k)
	return 0
}

func printClusterStats(stdout io.Writer, st *cluster.Stats) {
	fmt.Fprintf(stdout, "cluster: n=%d, %d edges in %d batches, k=%d worker processes\n",
		st.N, st.EdgesTotal, st.Batches, st.K)
	fmt.Fprintf(stdout, "communication (measured): total %d bytes, max machine %d bytes; simulated estimate %d bytes\n",
		st.TotalCommBytes, st.MaxMachineBytes, st.EstCommBytes)
	fmt.Fprintf(stdout, "shard traffic: %d bytes to workers; throughput %.0f edges/sec (%.1f ms)\n",
		st.ShardBytes, st.EdgesPerSec(), float64(st.Duration.Microseconds())/1000)
	if st.Retries > 0 {
		fmt.Fprintf(stdout, "recovery: %d replay attempts, machines replayed %v\n",
			st.Retries, st.ReplayedMachines)
	}
	printMachineStats(stdout, st.MachineStats, "  ")
}

func printStreamStats(stdout io.Writer, st *stream.Stats) {
	fmt.Fprintf(stdout, "stream: n=%d, %d edges in %d batches, k=%d machines\n",
		st.N, st.EdgesTotal, st.Batches, st.K)
	fmt.Fprintf(stdout, "communication: total %d bytes, max machine %d bytes\n",
		st.TotalCommBytes, st.MaxMachineBytes)
	fmt.Fprintf(stdout, "throughput: %.0f edges/sec (%.1f ms)\n",
		st.EdgesPerSec(), float64(st.Duration.Microseconds())/1000)
}

// inputSpec bundles the CLI flags that name an input graph: an edge-list
// file, a generator draw, or a stored dataset directory. One dispatch
// (openSource) serves every runtime, so the modes can never drift apart on
// what a given set of input flags means.
type inputSpec struct {
	in      string // edge-list file, '-' for stdin
	genName string // gnp | star | powerlaw
	dataset string // dataset directory (coreset ingest)
	n       int
	deg     float64
	seed    uint64
}

// openSource builds a streaming edge source from the CLI input flags. The
// returned close function is non-nil when a file must be closed after the run.
func openSource(sp inputSpec) (stream.EdgeSource, func() error, error) {
	if sp.dataset != "" {
		d, err := dataset.Open(sp.dataset)
		if err != nil {
			return nil, nil, err
		}
		return stream.NewDatasetSource(d), d.Close, nil
	}
	if sp.genName != "" {
		n, deg, seed := sp.n, sp.deg, sp.seed
		switch sp.genName {
		case "gnp":
			return stream.NewIterSource(n, func() gen.EdgeIter { return gen.GNPIter(n, deg/float64(n), rng.New(seed)) }), nil, nil
		case "star":
			return stream.NewIterSource(n, func() gen.EdgeIter { return gen.StarIter(n) }), nil, nil
		case "powerlaw":
			return stream.NewIterSource(n, func() gen.EdgeIter { return gen.PowerlawIter(n, 2.0, n/16+1, rng.New(seed)) }), nil, nil
		default:
			return nil, nil, fmt.Errorf("unknown generator %q", sp.genName)
		}
	}
	switch sp.in {
	case "":
		return nil, nil, fmt.Errorf("need -in FILE, -gen NAME or -dataset DIR")
	case "-":
		return stream.NewReaderSource(os.Stdin), nil, nil
	default:
		f, err := os.Open(sp.in)
		if err != nil {
			return nil, nil, err
		}
		return stream.NewReaderSource(f), f.Close, nil
	}
}

// runIngest implements the ingest subcommand: store an edge list (or a
// generator draw) as an on-disk dataset that -dataset and coresetd -datasets
// can stream without re-parsing.
func runIngest(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coreset ingest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "input edge-list file ('-' for stdin); SNAP-style messiness tolerated")
		genName  = fs.String("gen", "", "synthetic input: gnp | powerlaw | star")
		n        = fs.Int("n", 10000, "vertices for -gen")
		deg      = fs.Float64("deg", 8, "average degree for -gen")
		seed     = fs.Uint64("seed", 1, "generator seed for -gen")
		out      = fs.String("out", "", "dataset directory to create (required)")
		segEdges = fs.Int("seg-edges", 0, "edges per segment block (0 = default)")
		quiet    = fs.Bool("q", false, "print only the summary line")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "coreset ingest: need -out DIR")
		return 2
	}
	if (*in == "") == (*genName == "") {
		fmt.Fprintln(stderr, "coreset ingest: need exactly one of -in FILE and -gen NAME")
		return 2
	}

	opts := dataset.IngestOptions{SegmentEdges: *segEdges}
	var (
		man *dataset.Manifest
		err error
	)
	switch {
	case *genName != "":
		// Generator draws are trusted (no self-loops, no duplicates) and must
		// keep their draw order, so they go through the Builder directly: a
		// dataset-backed run composes the exact coresets the -gen run would.
		opts.Source = fmt.Sprintf("gen:%s n=%d deg=%g seed=%d", *genName, *n, *deg, *seed)
		man, err = ingestSource(inputSpec{genName: *genName, n: *n, deg: *deg, seed: *seed}, *out, opts)
	case *in == "-":
		opts.Source = "stdin"
		man, err = dataset.Ingest(*out, os.Stdin, opts)
	default:
		man, err = dataset.IngestFile(*out, *in, opts)
	}
	if err != nil {
		fmt.Fprintln(stderr, "coreset ingest:", err)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stdout, "source: %s\n", man.Source)
		fmt.Fprintf(stdout, "layout: %d segments, %d bytes on disk\n", len(man.Segments), man.Bytes)
		fmt.Fprintf(stdout, "hash: %s\n", man.Hash)
		if man.SelfLoops > 0 || man.Duplicates > 0 {
			fmt.Fprintf(stdout, "dropped: %d self-loops, %d duplicate edges\n", man.SelfLoops, man.Duplicates)
		}
	}
	fmt.Fprintf(stdout, "ingested: n=%d m=%d into %s\n", man.N, man.M, *out)
	return 0
}

// ingestSource drains a streaming edge source into a dataset build.
func ingestSource(sp inputSpec, dir string, opts dataset.IngestOptions) (*dataset.Manifest, error) {
	src, closeSrc, err := openSource(sp)
	if err != nil {
		return nil, err
	}
	if closeSrc != nil {
		defer closeSrc()
	}
	b, err := dataset.NewBuilder(dir, opts)
	if err != nil {
		return nil, err
	}
	buf := make([]graph.Edge, 4096)
	for {
		c, err := src.Next(buf)
		if addErr := b.Add(buf[:c]...); addErr != nil {
			b.Abort()
			return nil, addErr
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Abort()
			return nil, err
		}
	}
	return b.Finish(src.NumVertices(), opts.Source, 0, 0)
}

// loadGraph materializes the same input openSource streams: one dispatch,
// two consumption modes, so batch and -stream can never drift apart on what
// a given set of input flags means.
func loadGraph(sp inputSpec) (*graph.Graph, error) {
	src, closeSrc, err := openSource(sp)
	if err != nil {
		return nil, err
	}
	if closeSrc != nil {
		defer closeSrc()
	}
	var edges []graph.Edge
	buf := make([]graph.Edge, 4096)
	for {
		c, err := src.Next(buf)
		edges = append(edges, buf[:c]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return &graph.Graph{N: src.NumVertices(), Edges: edges}, nil
}
