// Command coreset runs the randomized-composable-coreset pipeline on an
// edge-list graph: it randomly partitions the edges across k simulated
// machines, computes per-machine coresets in parallel, composes the final
// solution and reports quality plus communication cost.
//
// Usage:
//
//	coreset -task matching -k 8 -in graph.txt
//	coreset -task vc -k 8 -in graph.txt
//	coreset -task matching -gen gnp -n 10000 -deg 8   (synthetic input)
//
// The input format is one "u v" edge per line, optionally preceded by a
// header "p <n> <m>"; lines starting with '#' or '%' are comments.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func main() {
	var (
		task    = flag.String("task", "matching", "problem: matching | vc")
		k       = flag.Int("k", 4, "number of machines")
		in      = flag.String("in", "", "input edge-list file ('-' for stdin)")
		genName = flag.String("gen", "", "synthetic input: gnp | powerlaw | star")
		n       = flag.Int("n", 10000, "vertices for -gen")
		deg     = flag.Float64("deg", 8, "average degree for -gen")
		seed    = flag.Uint64("seed", 1, "root seed")
		workers = flag.Int("workers", 0, "max goroutines (0 = GOMAXPROCS)")
		quiet   = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()

	g, err := loadGraph(*in, *genName, *n, *deg, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coreset:", err)
		os.Exit(1)
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "coreset: invalid input:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("graph: n=%d m=%d, k=%d machines\n", g.N, g.M(), *k)
	}

	switch *task {
	case "matching":
		m, st := core.DistributedMatching(g, *k, *workers, *seed)
		if err := matching.Verify(g.N, g.Edges, m); err != nil {
			fmt.Fprintln(os.Stderr, "coreset: internal error:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("coreset edges per machine: %v\n", st.CoresetEdges)
			fmt.Printf("communication: total %d bytes, max machine %d bytes\n",
				st.TotalCommBytes, st.MaxMachineBytes)
		}
		fmt.Printf("matching: %d edges (distributed, %d machines)\n", m.Size(), *k)
	case "vc":
		cover, st := core.DistributedVertexCover(g, *k, *workers, *seed)
		if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
			fmt.Fprintln(os.Stderr, "coreset: internal error:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("fixed vertices per machine: %v\n", st.CoresetFixed)
			fmt.Printf("residual edges per machine: %v\n", st.CoresetEdges)
			fmt.Printf("communication: total %d bytes, max machine %d bytes\n",
				st.TotalCommBytes, st.MaxMachineBytes)
		}
		fmt.Printf("vertex cover: %d vertices (distributed, %d machines)\n", len(cover), *k)
	default:
		fmt.Fprintf(os.Stderr, "coreset: unknown task %q\n", *task)
		os.Exit(2)
	}
}

func loadGraph(in, genName string, n int, deg float64, seed uint64) (*graph.Graph, error) {
	if genName != "" {
		r := rng.New(seed)
		switch genName {
		case "gnp":
			return gen.GNP(n, deg/float64(n), r), nil
		case "powerlaw":
			return gen.ChungLu(n, 2.0, n/16+1, r), nil
		case "star":
			return gen.Star(n), nil
		default:
			return nil, fmt.Errorf("unknown generator %q", genName)
		}
	}
	switch in {
	case "":
		return nil, fmt.Errorf("need -in FILE or -gen NAME")
	case "-":
		return graph.ReadEdgeList(os.Stdin)
	default:
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
}
