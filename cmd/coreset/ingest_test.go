package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIngestFileAndRunDataset: ingest a messy SNAP-style edge list, then run
// the same task from the stored dataset and from the cleaned file — the
// summary lines must match in every local mode.
func TestIngestFileAndRunDataset(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.txt")
	messy := "# SNAP comment\n0\t1\r\n1 2\n2 2\n2 3\n1 2\n3 4\n"
	if err := os.WriteFile(raw, []byte(messy), 0o644); err != nil {
		t.Fatal(err)
	}
	ds := filepath.Join(dir, "data", "path")
	out, errOut, code := runCLI(t, "ingest", "-in", raw, "-out", ds)
	if code != 0 {
		t.Fatalf("ingest exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "ingested: n=5 m=4") {
		t.Fatalf("ingest summary: %q", out)
	}
	if !strings.Contains(out, "dropped: 1 self-loops, 1 duplicate edges") {
		t.Fatalf("ingest drop report missing: %q", out)
	}

	clean := filepath.Join(dir, "clean.txt")
	if err := os.WriteFile(clean, []byte("p 5 4\n0 1\n1 2\n2 3\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range [][]string{nil, {"-stream"}} {
		base := append([]string{"-task", "matching", "-k", "2", "-seed", "3", "-q"}, mode...)
		fromDS, errDS, code := runCLI(t, append(base, "-dataset", ds)...)
		if code != 0 {
			t.Fatalf("dataset run exit %d, stderr: %s", code, errDS)
		}
		fromFile, errF, code := runCLI(t, append(base, "-in", clean)...)
		if code != 0 {
			t.Fatalf("file run exit %d, stderr: %s", code, errF)
		}
		if fromDS != fromFile {
			t.Fatalf("mode %v: dataset %q, file %q", mode, fromDS, fromFile)
		}
	}
}

// TestIngestGenParity: a dataset built from a generator draw must reproduce
// the -gen run verbatim — same draw order, same sharding, same summary.
func TestIngestGenParity(t *testing.T) {
	ds := filepath.Join(t.TempDir(), "gnp")
	out, errOut, code := runCLI(t, "ingest", "-gen", "gnp", "-n", "2000", "-deg", "6", "-seed", "7", "-out", ds, "-seg-edges", "512")
	if code != 0 {
		t.Fatalf("ingest exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "ingested: n=2000 m=5960") {
		t.Fatalf("ingest summary: %q", out)
	}

	args := []string{"-task", "matching", "-seed", "7", "-k", "4", "-stream"}
	fromDS, errDS, code := runCLI(t, append(args, "-dataset", ds)...)
	if code != 0 {
		t.Fatalf("dataset run exit %d, stderr: %s", code, errDS)
	}
	fromGen, errG, code := runCLI(t, append(args, "-gen", "gnp", "-n", "2000", "-deg", "6")...)
	if code != 0 {
		t.Fatalf("gen run exit %d, stderr: %s", code, errG)
	}
	// The segment size sets the dataset source's Next() granularity, so the
	// batch count and wall-clock lines legitimately differ; everything the
	// pipeline computes — bytes, coresets, the composed matching — must not.
	strip := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "throughput:") || strings.HasPrefix(line, "stream:") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	for _, s := range []string{fromDS, fromGen} {
		if !strings.Contains(s, "n=2000, 5960 edges") {
			t.Fatalf("run did not see the full graph: %q", s)
		}
	}
	if strip(fromDS) != strip(fromGen) {
		t.Fatalf("dataset-backed run diverged from -gen:\n%q\n%q", fromDS, fromGen)
	}
}

// The flag surface rejects ambiguous inputs.
func TestIngestAndDatasetFlagErrors(t *testing.T) {
	if _, errOut, code := runCLI(t, "ingest", "-in", "x", "-gen", "gnp", "-out", "y"); code != 2 || !strings.Contains(errOut, "exactly one") {
		t.Fatalf("ingest with two inputs: exit %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runCLI(t, "ingest", "-in", "x"); code != 2 || !strings.Contains(errOut, "-out") {
		t.Fatalf("ingest without -out: exit %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runCLI(t, "-task", "matching", "-dataset", "d", "-gen", "gnp"); code != 2 || !strings.Contains(errOut, "-dataset replaces") {
		t.Fatalf("-dataset with -gen: exit %d, stderr %q", code, errOut)
	}
}
