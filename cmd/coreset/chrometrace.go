package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/graph"
)

// traceEvent is one Chrome trace-event (the JSON object format Perfetto and
// chrome://tracing load). Only the two event kinds the timeline needs are
// emitted: "X" complete events carrying a duration, and "M" metadata events
// naming the processes. Timestamps and durations are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace assembles a cluster run report into a Perfetto-loadable
// timeline: pid 0 is the coordinator, pid m+1 is machine m, and each round is
// one track (tid = round index). The coordinator's span is the round's
// measured wall time; each machine's decode/build/encode spans are the phase
// wall times its TELEM frame reported, laid out back to back from the round's
// start (workers report durations, not absolute times, so the layout shows
// relative phase cost rather than true concurrency). Rounds are placed end to
// end on the time axis, mirroring the sequential round driver.
//
// Everything but the ts/dur values is a deterministic function of the run
// configuration, which is what makes the output golden-testable.
func chromeTrace(rep *graph.RunReport) []traceEvent {
	type roundView struct {
		round    int
		durUS    float64
		machines []graph.MachineStats
	}
	var rv []roundView
	if len(rep.RoundStats) > 0 {
		for _, rs := range rep.RoundStats {
			rv = append(rv, roundView{rs.Round, rs.DurationMS * 1000, rs.MachineStats})
		}
	} else {
		// Single-round run: the report's top-level breakdown is the round.
		rv = []roundView{{0, rep.DurationMS * 1000, rep.MachineStats}}
	}

	// Name every process that appears: the coordinator plus each machine
	// seen in any round's breakdown.
	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0, Ts: 0,
		Args: map[string]any{"name": "coordinator"},
	}}
	seen := map[int]bool{}
	for _, r := range rv {
		for _, m := range r.machines {
			if !seen[m.Machine] {
				seen[m.Machine] = true
				events = append(events, traceEvent{
					Name: "process_name", Ph: "M", Pid: m.Machine + 1, Tid: 0, Ts: 0,
					Args: map[string]any{"name": fmt.Sprintf("machine %d", m.Machine)},
				})
			}
		}
	}

	ts := 0.0
	for _, r := range rv {
		events = append(events, traceEvent{
			Name: fmt.Sprintf("round %d", r.round), Ph: "X", Pid: 0, Tid: r.round,
			Ts: ts, Dur: r.durUS,
			Args: map[string]any{"machines": len(r.machines)},
		})
		for _, m := range r.machines {
			args := map[string]any{
				"edgesIn":     m.EdgesIn,
				"repairIters": m.RepairIters,
				"removals":    m.Removals,
				"peakCoreset": m.PeakCoreset,
				"replayed":    m.Replayed,
			}
			at := ts
			for _, ph := range []struct {
				name  string
				durUS float64
			}{
				{"decode", m.DecodeMS * 1000},
				{"build", m.BuildMS * 1000},
				{"encode", m.EncodeMS * 1000},
			} {
				events = append(events, traceEvent{
					Name: ph.name, Ph: "X", Pid: m.Machine + 1, Tid: r.round,
					Ts: at, Dur: ph.durUS, Args: args,
				})
				at += ph.durUS
			}
		}
		ts += r.durUS
	}
	return events
}

// writeChromeTrace writes the run's timeline as Chrome trace-event JSON
// (the {"traceEvents": [...]} envelope) to path.
func writeChromeTrace(path string, rep *graph.RunReport) error {
	data, err := json.MarshalIndent(map[string]any{"traceEvents": chromeTrace(rep)}, "", " ")
	if err != nil {
		return fmt.Errorf("assembling trace: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	return nil
}
