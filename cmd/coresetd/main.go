// Command coresetd is the long-running coreset service: it keeps graphs and
// their composed coreset results resident and answers matching / vertex-cover
// queries over HTTP, so the reusable summaries the paper constructs are
// computed once and served many times.
//
// Usage:
//
//	coresetd -addr :8440
//	coresetd -addr :8440 -datasets /var/lib/coreset/datasets
//	coresetd -addr :8440 -cluster host:9601,host:9602
//
// With -datasets DIR the daemon serves a dataset store built by
// `coreset ingest`: graphs registered as {"dataset": "name"} keep their edges
// on disk, jobs stream them segment by segment, and results are cached by the
// dataset's content hash — a repeated job on a stored graph never re-parses
// or even re-reads it.
//
// With -cluster the daemon can also dispatch jobs to a fleet of resident
// cmd/coresetworker processes: a job with mode "cluster" (k must equal the
// fleet size) runs the coordinator against them and its report carries
// measured wire bytes next to the simulated estimate.
//
// API (JSON unless noted):
//
//	POST   /v1/graphs     register a graph: JSON {"gen": {...}},
//	                      {"edgeList": "..."} or {"dataset": "name"} (a stored
//	                      dataset from the -datasets store, streamed off disk);
//	                      any other content type is raw edge-list text
//	                      (optional ?id=NAME)
//	GET    /v1/graphs/{id}  describe a registered graph
//	DELETE /v1/graphs/{id}  drop an idle graph
//	POST   /v1/jobs       submit a job: {"graph","task","k","seed","mode"}
//	                      (any task registered in internal/task — currently
//	                      matching | vc | edcs | diversity; edcs takes "beta")
//	GET    /v1/jobs/{id}  poll a job; ?wait=2s long-polls until terminal
//	DELETE /v1/jobs/{id}  cancel a job
//	GET    /v1/stats      registry / job / cache counters
//	GET    /healthz       liveness probe (text); 503 "draining" during shutdown
//	GET    /metrics       Prometheus text exposition
//
// With -admin ADDR a second listener serves the operational surface away
// from the job API: /metrics, /healthz and net/http/pprof under
// /debug/pprof/. With -trace, job and round spans are logged to stderr.
//
// On SIGINT/SIGTERM the daemon stops accepting requests (healthz flips to
// "draining"), drains in-flight jobs (bounded by -drain) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("coresetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8440", "listen address")
		workers   = fs.Int("workers", 4, "job worker pool size")
		queue     = fs.Int("queue", 64, "pending-job queue depth")
		maxGraphs = fs.Int("max-graphs", 64, "resident graph cap (idle graphs beyond it are evicted)")
		cacheCap  = fs.Int("cache", 256, "result cache capacity (entries)")
		drain     = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		clusterW  = fs.String("cluster", "", "comma-separated coresetworker addresses; enables jobs with mode 'cluster'")
		spares    = fs.String("spares", "", "comma-separated standby coresetworker addresses round replay may substitute for failed fleet members")
		retries   = fs.Int("max-retries", cluster.DefaultMaxRetries, "per-machine, per-round replay budget after a cluster worker failure (0 = fail fast)")
		datasets  = fs.String("datasets", "", "dataset store directory (coreset ingest layout); enables {\"dataset\": name} registrations")
		admin     = fs.String("admin", "", "optional admin listener address serving /metrics, /healthz and /debug/pprof/")
		trace     = fs.Bool("trace", false, "log job and round spans to stderr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger := log.New(stderr, "coresetd: ", log.LstdFlags)

	var fleet, spareFleet []string
	if *clusterW != "" {
		parsed, err := cluster.ParseWorkerList(*clusterW)
		if err != nil {
			logger.Printf("-cluster: %v", err)
			return 2
		}
		fleet = parsed
	}
	if *spares != "" {
		if len(fleet) == 0 {
			logger.Printf("-spares requires -cluster")
			return 2
		}
		parsed, err := cluster.ParseWorkerList(*spares)
		if err != nil {
			logger.Printf("-spares: %v", err)
			return 2
		}
		spareFleet = parsed
	}
	if *retries < 0 {
		logger.Printf("-max-retries must be >= 0 (got %d)", *retries)
		return 2
	}
	maxRetries := *retries
	if maxRetries == 0 {
		maxRetries = -1 // service convention: negative disables replay
	}
	var tracer *obs.Tracer
	if *trace {
		tracer = obs.NewTracer(slog.New(slog.NewTextHandler(stderr, nil)), "")
	}
	svc := service.New(service.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		MaxGraphs:         *maxGraphs,
		CacheSize:         *cacheCap,
		ClusterWorkers:    fleet,
		ClusterSpares:     spareFleet,
		ClusterMaxRetries: maxRetries,
		DatasetDir:        *datasets,
		Tracer:            tracer,
	})
	httpSrv := &http.Server{
		Addr:        *addr,
		Handler:     svc,
		ReadTimeout: 5 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	if len(fleet) > 0 {
		logger.Printf("cluster fleet: %d workers (%s)", len(fleet), *clusterW)
	}
	if *datasets != "" {
		logger.Printf("dataset store: %s", *datasets)
	}
	logger.Printf("serving on %s (workers=%d queue=%d)", ln.Addr(), *workers, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The admin listener keeps the operational surface (metrics, profiling)
	// off the job-facing port, so it can stay firewalled to operators.
	var adminSrv *http.Server
	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			logger.Printf("admin listen: %v", err)
			return 1
		}
		adminSrv = &http.Server{Addr: *admin, Handler: adminMux(svc)}
		logger.Printf("admin surface on %s (/metrics, /healthz, /debug/pprof/)", aln.Addr())
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("admin serve: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logger.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}

	logger.Printf("shutting down: draining for up to %v", *drain)
	// Flip /healthz to "draining" before the listeners come down, so load
	// balancers stop routing while in-flight requests finish.
	svc.BeginDrain()
	// The HTTP listener and the job pool each get their own drain budget: a
	// client parked in a long-poll must not eat the time the job drain needs.
	hctx, hcancel := context.WithTimeout(context.Background(), *drain)
	if err := httpSrv.Shutdown(hctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(hctx); err != nil {
			logger.Printf("admin shutdown: %v", err)
		}
	}
	hcancel()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		return 1
	}
	logger.Printf("drained cleanly")
	return 0
}

// adminMux builds the operational handler: metrics and health delegated to
// the service, plus the stdlib pprof endpoints.
func adminMux(svc *service.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", svc.Metrics().Handler())
	mux.Handle("GET /healthz", svc) // service routes /healthz itself
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
