package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeMetrics serves a /metrics exposition whose counter advances on every
// scrape — a stand-in for a coresetworker -admin surface.
func fakeMetrics(t *testing.T, name string, step int64) *httptest.Server {
	t.Helper()
	var v atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v.Add(step)-step)
		fmt.Fprintf(w, "worker_bytes_total{dir=\"in\"} %d\n", (v.Load()-step)*100)
		fmt.Fprintln(w, "some_gauge 42")
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestScrapeSetPerURLDeltas: -scrape with two explicit admin URLs snapshots
// both surfaces and prints each one's moved counters under its own header —
// how per-worker frame/byte deltas line up next to the service's.
func TestScrapeSetPerURLDeltas(t *testing.T) {
	w0 := fakeMetrics(t, "worker_frames_total", 7)
	w1 := fakeMetrics(t, "worker_frames_total", 3)

	s, err := newScrapeSet(w0.URL + "/," + w1.URL) // trailing slash is trimmed
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	after, err := s.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	s.printDeltas(&out, before, after)
	got := out.String()

	for _, want := range []string{
		"metrics delta over the run (" + w0.URL + "):",
		"metrics delta over the run (" + w1.URL + "):",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing per-URL header %q:\n%s", want, got)
		}
	}
	// Each surface advanced by its own step; both deltas must print, the
	// gauge must not.
	if !strings.Contains(got, "+7") || !strings.Contains(got, "+3") {
		t.Errorf("per-worker counter deltas missing:\n%s", got)
	}
	if !strings.Contains(got, `worker_bytes_total{dir="in"}`) {
		t.Errorf("labeled byte counter delta missing:\n%s", got)
	}
	if strings.Contains(got, "some_gauge") {
		t.Errorf("gauge leaked into the delta report:\n%s", got)
	}
}

// TestScrapeSetOff: the flag unset is a nil set, and every operation on it
// is a free no-op.
func TestScrapeSetOff(t *testing.T) {
	s, err := newScrapeSet("")
	if err != nil || s != nil {
		t.Fatalf("newScrapeSet(\"\") = %v, %v; want nil, nil", s, err)
	}
	if snap, err := s.snapshot(); snap != nil || err != nil {
		t.Fatalf("nil snapshot = %v, %v", snap, err)
	}
	var out strings.Builder
	s.printDeltas(&out, nil, nil)
	if out.Len() != 0 {
		t.Fatalf("nil printDeltas wrote %q", out.String())
	}
}

// TestScrapeSetRejectsEmptyURL: a stray comma is a configuration error, not
// a silently skipped surface.
func TestScrapeSetRejectsEmptyURL(t *testing.T) {
	if _, err := newScrapeSet("http://a:1,,http://b:2"); err == nil {
		t.Fatal("empty URL accepted")
	}
}
