// Command coresetload is the load generator for coreset deployments. Its
// default target is a coresetd daemon: it registers a graph, fires a stream
// of jobs from concurrent clients, long-polls each to completion and reports
// client-side latency percentiles plus the server's cache counters. Cycling
// a small seed set (-seeds) makes repeated keys hit the result cache, so the
// tool doubles as a demonstration that cached queries are orders of
// magnitude cheaper than cold ones.
//
// With -target cluster it instead drives a coordinator+workers deployment
// directly: each job is a full cluster run (shard over TCP to the
// coresetworker fleet named by -cluster, compose the returned coresets),
// and the same workload is replayed through the in-process streaming
// runtime, so the end-to-end cluster latency percentiles print next to the
// in-process numbers they should be judged against.
//
// Task edcs works against both targets, and -rounds N makes every job a
// multi-round MPC run (internal/rounds): against the service the round cap
// rides in the job request (and its cache key), against a cluster each job
// holds one multi-round session over the fleet.
//
// With -scrape URL[,URL...] the tool snapshots each URL's GET /metrics
// before and after the run and prints the counter deltas attributable to the
// workload next to the latency percentiles. The URLs are explicit so one run
// can watch every metrics surface a deployment exposes side by side: the
// coresetd daemon (-addr base; submitted/done totals, cache traffic, wire
// byte counters) and each coresetworker's -admin listener (per-worker frame,
// byte and phase counters), against either target.
//
// With -dataset NAME the service workload runs against a stored dataset from
// the daemon's -datasets store instead of a generator spec — jobs stream the
// graph off the daemon's disk, and repeats are served from the hash-keyed
// result cache. Adding -mix registers both the dataset and the -gen spec and
// alternates jobs between them, reporting per-kind latency percentiles next
// to the combined line, so disk-backed and generator-backed job costs can be
// compared in one run.
//
// Usage:
//
//	coresetload -addr http://127.0.0.1:8440 -gen gnp -n 20000 -deg 8 \
//	            -task matching -k 4 -jobs 32 -c 4 -seeds 4
//	coresetload -addr http://127.0.0.1:8440 -dataset web -mix -gen gnp \
//	            -n 20000 -deg 8 -task matching -jobs 32 -c 4
//	coresetload -target cluster -cluster 127.0.0.1:9601,127.0.0.1:9602 \
//	            -gen gnp -n 20000 -deg 8 -task matching -jobs 16 -c 2
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/edcs"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/service"
	"repro/internal/stream"
	"repro/internal/task"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coresetload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8440", "coresetd base URL (-target service)")
		target   = fs.String("target", "service", "what to load: service (coresetd HTTP) | cluster (coordinator+workers)")
		clusterW = fs.String("cluster", "", "comma-separated coresetworker addresses (-target cluster)")
		retries  = fs.Int("max-retries", -1, "per-machine, per-round replay budget after a worker failure (-target cluster; -1 = default, 0 = fail fast)")
		genName  = fs.String("gen", "gnp", "graph generator: gnp | star | powerlaw")
		dsName   = fs.String("dataset", "", "dataset name in the daemon's store (coresetd -datasets); replaces -gen for -target service")
		mix      = fs.Bool("mix", false, "with -dataset: alternate dataset-backed and gen-backed jobs and report per-kind latency percentiles")
		n        = fs.Int("n", 20000, "vertices")
		deg      = fs.Float64("deg", 8, "average degree (gnp)")
		gseed    = fs.Uint64("graphseed", 1, "generator seed")
		taskName = fs.String("task", "matching", "job task: "+strings.Join(task.Names(), " | "))
		beta     = fs.Int("beta", 0, "EDCS degree bound (task edcs; 0 = default)")
		rounds   = fs.Int("rounds", 0, "multi-round MPC round cap (task edcs; 0 = single round)")
		k        = fs.Int("k", 4, "machines per job (-target service; cluster uses the fleet size)")
		mode     = fs.String("mode", "stream", "job mode: stream | batch (-target service)")
		jobs     = fs.Int("jobs", 32, "total jobs to run")
		conc     = fs.Int("c", 4, "concurrent clients")
		seeds    = fs.Int("seeds", 4, "distinct job seeds to cycle (repeats hit the service cache)")
		warmup   = fs.Int("warmup", -1, "jobs excluded from latency percentiles as warmup (-1 = auto: one wave of clients for -target cluster, 0 for service)")
		timeout  = fs.Duration("timeout", 5*time.Minute, "per-job completion timeout")
		scrape   = fs.String("scrape", "", "comma-separated base URLs to snapshot GET /metrics around the run (coresetd -addr, coresetworker -admin); deltas print per URL")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *jobs <= 0 || *conc <= 0 || *seeds <= 0 {
		fmt.Fprintln(stderr, "coresetload: -jobs, -c and -seeds must be > 0")
		return 2
	}
	// Fail fast on -beta/-rounds with the one shared validator cmd/coreset
	// and coresetd's job API also use — silently benchmarking something
	// other than what the flags claim would mislabel every latency
	// percentile this tool prints.
	if err := service.ValidateTaskParams(*taskName, *beta, *rounds); err != nil {
		fmt.Fprintln(stderr, "coresetload:", err)
		return 2
	}
	scrapers, err := newScrapeSet(*scrape)
	if err != nil {
		fmt.Fprintln(stderr, "coresetload:", err)
		return 2
	}
	if *mix && *dsName == "" {
		fmt.Fprintln(stderr, "coresetload: -mix requires -dataset (it alternates dataset-backed and gen-backed jobs)")
		return 2
	}
	if *target == "cluster" {
		if *dsName != "" {
			fmt.Fprintln(stderr, "coresetload: -dataset requires -target service (the store lives with coresetd)")
			return 2
		}
		// Cluster cold-start (dials, worker first-touch) lands on the first
		// wave of jobs; exclude one wave per client unless told otherwise.
		w := *warmup
		if w < 0 {
			w = *conc
		}
		return runClusterTarget(*clusterW, *genName, *n, *deg, *gseed, *taskName, *beta, *rounds, *jobs, *conc, *seeds, w, *retries, *timeout, scrapers, stdout, stderr)
	}
	if *target != "service" {
		fmt.Fprintf(stderr, "coresetload: unknown target %q\n", *target)
		return 2
	}
	if *retries >= 0 {
		fmt.Fprintln(stderr, "coresetload: -max-retries requires -target cluster (replay only exists in the cluster runtime)")
		return 2
	}
	if *warmup < 0 {
		*warmup = 0 // service cold-vs-hit asymmetry is the point; keep all samples by default
	}

	lg := &loadgen{base: *addr, client: &http.Client{Timeout: 2 * time.Minute}}

	// The workload's graphs, one per kind. Plain runs use a single kind (the
	// generator spec, or the stored dataset with -dataset); -mix registers
	// both and alternates jobs across them so dataset-backed and gen-backed
	// latency distributions print side by side.
	var graphIDs, kinds []string
	if *dsName != "" {
		var info service.GraphInfo
		if err := lg.postJSON("/v1/graphs", service.CreateGraphRequest{Dataset: *dsName}, &info); err != nil {
			fmt.Fprintln(stderr, "coresetload: registering dataset:", err)
			return 1
		}
		fmt.Fprintf(stdout, "graph %s: dataset %s n=%d m=%d\n", info.ID, *dsName, info.N, info.M)
		graphIDs, kinds = append(graphIDs, info.ID), append(kinds, "dataset")
	}
	if *dsName == "" || *mix {
		var info service.GraphInfo
		req := service.CreateGraphRequest{Gen: &service.GenSpec{Name: *genName, N: *n, Deg: *deg, Seed: *gseed}}
		if err := lg.postJSON("/v1/graphs", req, &info); err != nil {
			fmt.Fprintln(stderr, "coresetload: registering graph:", err)
			return 1
		}
		fmt.Fprintf(stdout, "graph %s: %s n=%d\n", info.ID, *genName, info.N)
		graphIDs, kinds = append(graphIDs, info.ID), append(kinds, "gen")
	}

	before, err := scrapers.snapshot()
	if err != nil {
		fmt.Fprintln(stderr, "coresetload: scraping /metrics:", err)
		return 1
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		perKind   = make(map[string][]time.Duration)
		failures  int
	)
	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < *jobs; i++ {
			next <- i
		}
		close(next)
	}()
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				kindIdx := i % len(graphIDs)
				jr := service.CreateJobRequest{
					Graph: graphIDs[kindIdx], Task: *taskName, K: *k,
					Seed: uint64(i % *seeds), Mode: *mode,
					Beta: *beta, Rounds: *rounds,
				}
				t0 := time.Now()
				err := lg.runJob(jr, *timeout)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					failures++
					fmt.Fprintf(stderr, "coresetload: job %d: %v\n", i, err)
				} else {
					latencies = append(latencies, d)
					perKind[kinds[kindIdx]] = append(perKind[kinds[kindIdx]], d)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sum, ok := summarize(latencies, *warmup)
	if !ok {
		fmt.Fprintln(stderr, "coresetload: no job succeeded")
		return 1
	}
	fmt.Fprintf(stdout, "%d jobs in %.2fs (%.1f jobs/sec), %d failed, %d excluded as warmup\n",
		len(latencies), wall.Seconds(), float64(len(latencies))/wall.Seconds(), failures, sum.Excluded)
	fmt.Fprintf(stdout, "latency: p50 %s  p90 %s  p99 %s  max %s\n",
		sum.P50.Round(time.Microsecond), sum.P90.Round(time.Microsecond),
		sum.P99.Round(time.Microsecond), sum.Max.Round(time.Microsecond))
	if len(kinds) > 1 {
		// -mix: one percentile line per graph kind, over that kind's own
		// samples (the shared warmup count applies to each series).
		for _, kind := range kinds {
			ks, ok := summarize(perKind[kind], *warmup)
			if !ok {
				fmt.Fprintf(stdout, "%-8s no successful jobs\n", kind+":")
				continue
			}
			fmt.Fprintf(stdout, "%-8s %d jobs; latency p50 %s  p90 %s  p99 %s  max %s\n",
				kind+":", len(perKind[kind]),
				ks.P50.Round(time.Microsecond), ks.P90.Round(time.Microsecond),
				ks.P99.Round(time.Microsecond), ks.Max.Round(time.Microsecond))
		}
	}

	var st service.StatsView
	if err := lg.getJSON("/v1/stats", &st); err != nil {
		fmt.Fprintln(stderr, "coresetload: stats:", err)
		return 1
	}
	fmt.Fprintf(stdout, "server: %d done / %d failed / %d canceled; cache %d hits / %d misses\n",
		st.Jobs.Done, st.Jobs.Failed, st.Jobs.Canceled, st.Cache.Hits, st.Cache.Misses)
	after, err := scrapers.snapshot()
	if err != nil {
		fmt.Fprintln(stderr, "coresetload: scraping /metrics:", err)
		return 1
	}
	scrapers.printDeltas(stdout, before, after)
	if failures > 0 {
		return 1
	}
	return 0
}

// scrapeSet is the set of /metrics surfaces -scrape snapshots around a run:
// each URL is a base (a coresetd -addr or a coresetworker -admin listener)
// whose GET /metrics is fetched before and after the workload. A nil set —
// the flag unset — costs nothing.
type scrapeSet struct {
	urls   []string
	client *http.Client
}

func newScrapeSet(spec string) (*scrapeSet, error) {
	if spec == "" {
		return nil, nil
	}
	var urls []string
	for _, u := range strings.Split(spec, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, errors.New("-scrape: empty URL in list")
		}
		urls = append(urls, u)
	}
	return &scrapeSet{urls: urls, client: &http.Client{Timeout: 30 * time.Second}}, nil
}

// snapshot fetches and parses every surface's exposition, keyed by base URL.
func (s *scrapeSet) snapshot() (map[string]map[string]float64, error) {
	if s == nil {
		return nil, nil
	}
	out := make(map[string]map[string]float64, len(s.urls))
	for _, u := range s.urls {
		m, err := s.scrapeOne(u)
		if err != nil {
			return nil, err
		}
		out[u] = m
	}
	return out, nil
}

func (s *scrapeSet) scrapeOne(base string) (map[string]float64, error) {
	resp, err := s.client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/metrics: HTTP %d", base, resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}

// printDeltas prints each surface's moved counters under its own header, so
// per-worker frame/byte deltas line up next to the service's job totals.
func (s *scrapeSet) printDeltas(w io.Writer, before, after map[string]map[string]float64) {
	if s == nil {
		return
	}
	for _, u := range s.urls {
		fmt.Fprintf(w, "metrics delta over the run (%s):\n", u)
		printMetricDeltas(w, before[u], after[u])
	}
}

// printMetricDeltas prints every counter that moved during the run, so the
// server-side accounting (job totals, cache traffic, histogram sample counts,
// cluster wire bytes) lines up next to the client-side latency percentiles.
// Gauges and idle counters are suppressed: a delta of zero says nothing about
// this workload.
func printMetricDeltas(w io.Writer, before, after map[string]float64) {
	names := make([]string, 0, len(after))
	for name := range after {
		if !strings.Contains(name, "_total") && !strings.HasSuffix(metricBase(name), "_count") && !strings.HasSuffix(metricBase(name), "_sum") && !strings.Contains(name, "_bucket") {
			continue // gauges: point-in-time values, deltas are noise
		}
		if strings.Contains(name, "_bucket") {
			continue // bucket-level deltas overwhelm the summary; _count/_sum carry the story
		}
		if after[name]-before[name] != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-60s +%g\n", name, after[name]-before[name])
	}
	if len(names) == 0 {
		fmt.Fprintln(w, "  (no counters moved)")
	}
}

// metricBase strips a label set from a sample name: "m_count{a=\"b\"}" → "m_count".
func metricBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// runClusterTarget drives a coordinator+workers deployment directly: every
// job is one full cluster run against the fleet, then the identical workload
// replays through the in-process streaming runtime so the two latency
// distributions print side by side. Concurrent clients exercise the workers'
// many-runs-at-once path.
func runClusterTarget(clusterW, genName string, n int, deg float64, gseed uint64, taskName string, beta, roundCap, jobs, conc, seeds, warmup, maxRetries int, timeout time.Duration, scrapers *scrapeSet, stdout, stderr io.Writer) int {
	if clusterW == "" {
		fmt.Fprintln(stderr, "coresetload: -target cluster needs -cluster host:port,...")
		return 2
	}
	if maxRetries < 0 {
		maxRetries = cluster.DefaultMaxRetries // -1 means unset: replay on by default
	}
	addrs, err := cluster.ParseWorkerList(clusterW)
	if err != nil {
		fmt.Fprintln(stderr, "coresetload:", err)
		return 2
	}
	// Membership comes from the task registry — the same list the -task
	// usage string advertises.
	desc, ok := task.Get(taskName)
	if !ok {
		fmt.Fprintf(stderr, "coresetload: unknown task %q (known tasks: %s)\n", taskName, strings.Join(task.Names(), ", "))
		return 2
	}
	spec := &service.GenSpec{Name: genName, N: n, Deg: deg, Seed: gseed}
	if _, err := spec.Source(); err != nil {
		fmt.Fprintln(stderr, "coresetload:", err)
		return 1
	}
	fmt.Fprintf(stdout, "cluster: %d workers, %s n=%d, task %s, %d jobs x %d clients\n",
		len(addrs), genName, n, taskName, jobs, conc)

	before, err := scrapers.snapshot()
	if err != nil {
		fmt.Fprintln(stderr, "coresetload: scraping /metrics:", err)
		return 1
	}

	p := task.Params{}
	if desc.UsesBeta {
		p.EDCS = edcs.ParamsForBeta(beta)
	}
	multiRound := desc.WireRounds != 0 && roundCap >= 1
	rcfg := rounds.Config{K: len(addrs), Rounds: roundCap, Seed: 0, Params: p.EDCS}
	ccfgFor := func(seed uint64) cluster.Config {
		return cluster.Config{Workers: addrs, Seed: seed, MaxRetries: maxRetries}
	}
	// Every single-round path dispatches through the task descriptor; only
	// the multi-round MPC driver keeps its own entry points.
	runOne := func(mode string, seed uint64) (time.Duration, int, error) {
		src, err := spec.Source()
		if err != nil {
			return 0, 0, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		t0 := time.Now()
		retried := 0
		switch {
		case mode == "cluster" && multiRound:
			cfg := rcfg
			cfg.Seed = seed
			var st *rounds.Stats
			_, st, err = rounds.Cluster(ctx, src, ccfgFor(seed), cfg)
			if st != nil {
				retried = st.Retries
			}
		case mode == "cluster":
			var st *cluster.Stats
			_, st, err = cluster.Solve(ctx, src, ccfgFor(seed), desc, p)
			if st != nil {
				retried = st.Retries
			}
		case multiRound:
			cfg := rcfg
			cfg.Seed = seed
			_, _, err = rounds.Stream(ctx, src, cfg)
		default:
			_, _, err = stream.Solve(ctx, src, stream.Config{K: len(addrs), Seed: seed}, desc, p)
		}
		return time.Since(t0), retried, err
	}

	fire := func(mode string) ([]time.Duration, int, int, time.Duration) {
		var (
			mu        sync.Mutex
			latencies []time.Duration
			failures  int
			retries   int
		)
		start := time.Now()
		next := make(chan int)
		go func() {
			for i := 0; i < jobs; i++ {
				next <- i
			}
			close(next)
		}()
		var wg sync.WaitGroup
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					d, r, err := runOne(mode, uint64(i%seeds))
					mu.Lock()
					retries += r
					if err != nil {
						failures++
						fmt.Fprintf(stderr, "coresetload: %s job %d: %v\n", mode, i, err)
					} else {
						latencies = append(latencies, d)
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return latencies, failures, retries, time.Since(start)
	}

	report := func(label string, latencies []time.Duration, failures, retries int, wall time.Duration) bool {
		sum, ok := summarize(latencies, warmup)
		if !ok {
			fmt.Fprintf(stderr, "coresetload: no %s job succeeded\n", label)
			return false
		}
		fmt.Fprintf(stdout, "%-10s %d jobs in %.2fs (%.1f jobs/sec), %d failed, %d warmup; latency p50 %s  p90 %s  p99 %s  max %s\n",
			label+":", len(latencies), wall.Seconds(), float64(len(latencies))/wall.Seconds(), failures, sum.Excluded,
			sum.P50.Round(time.Microsecond), sum.P90.Round(time.Microsecond),
			sum.P99.Round(time.Microsecond), sum.Max.Round(time.Microsecond))
		if retries > 0 {
			fmt.Fprintf(stdout, "%-10s %d worker-failure replay attempts absorbed across jobs\n", label+":", retries)
		}
		return failures == 0
	}

	cl, cf, cr, cw := fire("cluster")
	// Snapshot before the in-process replay: only the cluster wave touches
	// the workers, so the window should close with it.
	after, err := scrapers.snapshot()
	if err != nil {
		fmt.Fprintln(stderr, "coresetload: scraping /metrics:", err)
		return 1
	}
	sl, sf, sr, sw := fire("in-process")
	okC := report("cluster", cl, cf, cr, cw)
	okS := report("in-process", sl, sf, sr, sw)
	scrapers.printDeltas(stdout, before, after)
	if !okC || !okS {
		return 1
	}
	return 0
}

type loadgen struct {
	base   string
	client *http.Client
}

func (l *loadgen) postJSON(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := l.client.Post(l.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return decode(resp, out)
}

func (l *loadgen) getJSON(path string, out any) error {
	resp, err := l.client.Get(l.base + path)
	if err != nil {
		return err
	}
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// runJob submits one job and long-polls it to a terminal state.
func (l *loadgen) runJob(req service.CreateJobRequest, timeout time.Duration) error {
	var v service.JobView
	if err := l.postJSON("/v1/jobs", req, &v); err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	for v.State == string(service.JobQueued) || v.State == string(service.JobRunning) {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s: timed out in state %s", v.ID, v.State)
		}
		if err := l.getJSON("/v1/jobs/"+v.ID+"?wait=2s", &v); err != nil {
			return err
		}
	}
	if v.State != string(service.JobDone) {
		return fmt.Errorf("job %s: state %s (%s)", v.ID, v.State, v.Error)
	}
	return nil
}
