// Command coresetload is the load generator for coresetd: it registers a
// graph, fires a stream of jobs from concurrent clients, long-polls each to
// completion and reports client-side latency percentiles plus the server's
// cache counters. Cycling a small seed set (-seeds) makes repeated keys hit
// the result cache, so the tool doubles as a demonstration that cached
// queries are orders of magnitude cheaper than cold ones.
//
// Usage:
//
//	coresetload -addr http://127.0.0.1:8440 -gen gnp -n 20000 -deg 8 \
//	            -task matching -k 4 -jobs 32 -c 4 -seeds 4
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coresetload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8440", "coresetd base URL")
		genName = fs.String("gen", "gnp", "graph generator: gnp | star | powerlaw")
		n       = fs.Int("n", 20000, "vertices")
		deg     = fs.Float64("deg", 8, "average degree (gnp)")
		gseed   = fs.Uint64("graphseed", 1, "generator seed")
		task    = fs.String("task", "matching", "job task: matching | vc")
		k       = fs.Int("k", 4, "machines per job")
		mode    = fs.String("mode", "stream", "job mode: stream | batch")
		jobs    = fs.Int("jobs", 32, "total jobs to run")
		conc    = fs.Int("c", 4, "concurrent clients")
		seeds   = fs.Int("seeds", 4, "distinct job seeds to cycle (repeats hit the cache)")
		timeout = fs.Duration("timeout", 5*time.Minute, "per-job completion timeout")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *jobs <= 0 || *conc <= 0 || *seeds <= 0 {
		fmt.Fprintln(stderr, "coresetload: -jobs, -c and -seeds must be > 0")
		return 2
	}

	lg := &loadgen{base: *addr, client: &http.Client{Timeout: 2 * time.Minute}}

	var info service.GraphInfo
	req := service.CreateGraphRequest{Gen: &service.GenSpec{Name: *genName, N: *n, Deg: *deg, Seed: *gseed}}
	if err := lg.postJSON("/v1/graphs", req, &info); err != nil {
		fmt.Fprintln(stderr, "coresetload: registering graph:", err)
		return 1
	}
	fmt.Fprintf(stdout, "graph %s: %s n=%d\n", info.ID, *genName, info.N)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  int
	)
	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < *jobs; i++ {
			next <- i
		}
		close(next)
	}()
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				jr := service.CreateJobRequest{
					Graph: info.ID, Task: *task, K: *k,
					Seed: uint64(i % *seeds), Mode: *mode,
				}
				t0 := time.Now()
				err := lg.runJob(jr, *timeout)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					failures++
					fmt.Fprintf(stderr, "coresetload: job %d: %v\n", i, err)
				} else {
					latencies = append(latencies, d)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if len(latencies) == 0 {
		fmt.Fprintln(stderr, "coresetload: no job succeeded")
		return 1
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Fprintf(stdout, "%d jobs in %.2fs (%.1f jobs/sec), %d failed\n",
		len(latencies), wall.Seconds(), float64(len(latencies))/wall.Seconds(), failures)
	fmt.Fprintf(stdout, "latency: p50 %s  p90 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))

	var st service.StatsView
	if err := lg.getJSON("/v1/stats", &st); err != nil {
		fmt.Fprintln(stderr, "coresetload: stats:", err)
		return 1
	}
	fmt.Fprintf(stdout, "server: %d done / %d failed / %d canceled; cache %d hits / %d misses\n",
		st.Jobs.Done, st.Jobs.Failed, st.Jobs.Canceled, st.Cache.Hits, st.Cache.Misses)
	if failures > 0 {
		return 1
	}
	return 0
}

type loadgen struct {
	base   string
	client *http.Client
}

func (l *loadgen) postJSON(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := l.client.Post(l.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return decode(resp, out)
}

func (l *loadgen) getJSON(path string, out any) error {
	resp, err := l.client.Get(l.base + path)
	if err != nil {
		return err
	}
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// runJob submits one job and long-polls it to a terminal state.
func (l *loadgen) runJob(req service.CreateJobRequest, timeout time.Duration) error {
	var v service.JobView
	if err := l.postJSON("/v1/jobs", req, &v); err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	for v.State == string(service.JobQueued) || v.State == string(service.JobRunning) {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s: timed out in state %s", v.ID, v.State)
		}
		if err := l.getJSON("/v1/jobs/"+v.ID+"?wait=2s", &v); err != nil {
			return err
		}
	}
	if v.State != string(service.JobDone) {
		return fmt.Errorf("job %s: state %s (%s)", v.ID, v.State, v.Error)
	}
	return nil
}
