package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/service"
)

// TestMixScenario drives the -dataset/-mix workload end to end against an
// in-process daemon with a dataset store: jobs must alternate between the
// stored dataset and the generator spec, and the report must carry one
// latency line per kind next to the combined percentiles.
func TestMixScenario(t *testing.T) {
	root := t.TempDir()
	g := gen.GNP(500, 8.0/500.0, rng.New(3))
	b, err := dataset.NewBuilder(filepath.Join(root, "web"), dataset.IngestOptions{SegmentEdges: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(g.Edges...); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(g.N, "test", 0, 0); err != nil {
		t.Fatal(err)
	}

	svc := service.New(service.Config{Workers: 2, DatasetDir: root})
	ts := httptest.NewServer(svc)
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-dataset", "web", "-mix",
		"-gen", "gnp", "-n", "500", "-deg", "8",
		"-task", "matching", "-k", "2", "-jobs", "8", "-c", "2", "-seeds", "2",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	s := out.String()
	for _, want := range []string{"graph web: dataset web n=500", "dataset: 4 jobs", "gen:     4 jobs", "latency: p50"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// -mix without -dataset and -dataset against -target cluster are flag errors.
func TestMixFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mix"}, &out, &errb); code != 2 || !strings.Contains(errb.String(), "-mix requires -dataset") {
		t.Fatalf("-mix alone: exit %d, stderr %q", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{"-target", "cluster", "-dataset", "web", "-cluster", "x:1"}, &out, &errb); code != 2 || !strings.Contains(errb.String(), "-dataset requires -target service") {
		t.Fatalf("-dataset with cluster target: exit %d, stderr %q", code, errb.String())
	}
}
