package main

import (
	"strings"
	"testing"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// TestPercentileNearestRank pins the nearest-rank definition on a fixed
// sample, including the small-count edge the old truncating formula got
// wrong (p99 of 4 samples must be the maximum, not the 3rd value).
func TestPercentileNearestRank(t *testing.T) {
	sorted := []time.Duration{ms(10), ms(20), ms(30), ms(40)}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.00, ms(10)}, // rank clamps to 1
		{0.25, ms(10)}, // rank ceil(1.0) = 1
		{0.50, ms(20)}, // rank 2
		{0.75, ms(30)}, // rank 3
		{0.90, ms(40)}, // rank ceil(3.6) = 4 — old formula said 30ms
		{0.99, ms(40)}, // rank ceil(3.96) = 4 — old formula said 30ms
		{1.00, ms(40)},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Fatalf("p%.0f of %v = %v, want %v", tc.p*100, sorted, got, tc.want)
		}
	}
	// Singleton: every percentile is the sample itself.
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := percentile([]time.Duration{ms(7)}, p); got != ms(7) {
			t.Fatalf("p%.0f of singleton = %v", p*100, got)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty sample percentile = %v", got)
	}
}

// TestSummarizeWarmup: the warmup window is excluded in completion order,
// so cold-start outliers at the front stop skewing p50; a window that would
// swallow everything is ignored.
func TestSummarizeWarmup(t *testing.T) {
	// Two slow cold-start jobs complete first, then eight fast ones.
	lat := []time.Duration{ms(500), ms(400), ms(10), ms(12), ms(11), ms(9), ms(10), ms(13), ms(8), ms(12)}

	cold, ok := summarize(lat, 0)
	if !ok || cold.Excluded != 0 {
		t.Fatalf("no-warmup summary: %+v ok=%v", cold, ok)
	}
	if cold.P99 != ms(500) || cold.Max != ms(500) {
		t.Fatalf("no-warmup p99/max = %v/%v, want 500ms", cold.P99, cold.Max)
	}

	warm, ok := summarize(lat, 2)
	if !ok || warm.Excluded != 2 || len(warm.Kept) != 8 {
		t.Fatalf("warmup summary: %+v ok=%v", warm, ok)
	}
	if warm.Max != ms(13) {
		t.Fatalf("warmup max = %v, want 13ms (cold-start samples leaked in)", warm.Max)
	}
	if warm.P50 != ms(10) { // rank ceil(0.5*8) = 4 of [8 9 10 10 11 12 12 13]
		t.Fatalf("warmup p50 = %v, want 10ms", warm.P50)
	}

	// A window covering every sample is ignored rather than reporting nothing.
	all, ok := summarize(lat, len(lat)+5)
	if !ok || all.Excluded != 0 || len(all.Kept) != len(lat) {
		t.Fatalf("oversized warmup: %+v ok=%v", all, ok)
	}
	if _, ok := summarize(nil, 0); ok {
		t.Fatal("empty input summarized")
	}
}

// TestRejectsUnusableBetaAndRounds: the load generator must fail fast on
// -beta/-rounds misuse with the same message shape as cmd/coreset and
// coresetd — a silently ignored flag would mislabel every latency
// percentile the tool prints.
func TestRejectsUnusableBetaAndRounds(t *testing.T) {
	for name, args := range map[string][]string{
		"beta-wrong-task":   {"-task", "matching", "-beta", "16"},
		"beta-too-small":    {"-task", "edcs", "-beta", "1"},
		"rounds-wrong-task": {"-task", "vc", "-rounds", "2"},
		"rounds-too-large":  {"-task", "edcs", "-rounds", "100"},
		"rounds-cluster":    {"-target", "cluster", "-cluster", "127.0.0.1:1", "-task", "matching", "-rounds", "2"},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Fatalf("%s: exited %d (stderr %q), want 2", name, code, errb.String())
		}
	}
}
