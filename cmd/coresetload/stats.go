package main

import (
	"sort"
	"time"
)

// latencySummary is the client-side latency digest the tool prints: a
// warmup window is excluded first (in completion order, so cold-start
// samples — connection setup, first-touch allocations, cold caches — drop
// out of the percentiles), then percentiles are read from the sorted
// remainder by the nearest-rank definition.
type latencySummary struct {
	Kept     []time.Duration // post-warmup samples, sorted ascending
	Excluded int             // samples dropped as warmup
	P50      time.Duration
	P90      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// summarize digests latencies (in completion order) with the first `warmup`
// samples excluded. If the warmup window would swallow every sample it is
// ignored — reporting nothing helps nobody — and all samples are kept.
// Returns ok=false only for an empty input.
func summarize(latencies []time.Duration, warmup int) (latencySummary, bool) {
	var s latencySummary
	if len(latencies) == 0 {
		return s, false
	}
	if warmup < 0 {
		warmup = 0
	}
	if warmup >= len(latencies) {
		warmup = 0
	}
	s.Excluded = warmup
	s.Kept = append([]time.Duration(nil), latencies[warmup:]...)
	sort.Slice(s.Kept, func(i, j int) bool { return s.Kept[i] < s.Kept[j] })
	s.P50 = percentile(s.Kept, 0.50)
	s.P90 = percentile(s.Kept, 0.90)
	s.P99 = percentile(s.Kept, 0.99)
	s.Max = s.Kept[len(s.Kept)-1]
	return s, true
}

// percentile returns the nearest-rank percentile of a sorted, non-empty
// sample: the smallest value such that at least p·N samples are <= it
// (rank ⌈p·N⌉, 1-indexed). Unlike the truncating index formula it replaces
// (int(p·(N−1)), which at N=4 reported the 3rd sample as the p99), the
// nearest-rank p99 of a small sample is its maximum — the honest answer.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted)) * p)
	if float64(rank) < float64(len(sorted))*p { // ceil for fractional ranks
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
