// Package repro is a production-quality Go reproduction of
//
//	Sepehr Assadi and Sanjeev Khanna.
//	"Randomized Composable Coresets for Matching and Vertex Cover".
//	SPAA 2017 (arXiv:1705.08242).
//
// The paper shows that although maximum matching and minimum vertex cover
// admit no small summaries under adversarial edge partitioning, a *random*
// k-partitioning changes everything: any maximum matching of a machine's
// partition is an O(1)-approximate composable coreset (Theorem 1), and an
// iterative peeling algorithm yields an O(log n)-approximate coreset for
// vertex cover (Theorem 2) — both of size O~(n). The repository implements
// the coresets, the protocol variants that make the paper's communication
// lower bounds tight (Remarks 5.2 and 5.8), the negative baselines, the
// hard input distributions behind the lower bounds (Theorems 3-6), the
// 2-round MapReduce algorithms, and an experiment harness (internal/expt,
// cmd/experiments) that regenerates a measurable table for every formal
// claim. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
//
// Four runtimes execute the model over one core, trading realism for
// convenience at each step:
//
//	           ┌─────────────────────────────────────────────────────┐
//	batch      │ materialize edges → RandomK parts → map → compose   │ simulator's view
//	stream     │ EdgeSource → hash sharder → k goroutines → compose  │ deployment shape
//	cluster    │ EdgeSource → hash sharder → k OS PROCESSES over TCP │ real machines,
//	           │   (typed frames, varint delta edge batches)         │ measured bytes
//	service    │ resident daemon dispatching jobs to any of the above│ summaries reused
//	           └──────────────── internal/core ──────────────────────┘
//	rounds     │ any of the above, iterated (task edcs, -rounds N):  │ multi-round MPC
//	           │   ┌────────────────────────────────────────┐        │ (O(log log n)
//	           │   └─▶ shard → k× EDCS → union ─▶ k ← ⌊√k⌋ ──┘        │  rounds)
//
// The batch pipeline (internal/core) materializes the edge list, partitions
// it with a single sequential RNG (partition.RandomK) and maps over the
// parts — the simulator's view. The streaming runtime (internal/stream) is
// the deployment's shape: an EdgeSource streams edges in batches (from a
// file, stdin or a generator, never holding the full graph), a seeded
// position-independent hash sharder (partition.HashAssign) routes them to k
// concurrent machine goroutines, each machine maintains its coreset
// incrementally (one-pass greedy matching telemetry plus an exact
// end-of-stream summary for Theorem 1; incremental degree tracking with
// online level-1 peeling for Theorem 2, which discards already-covered
// edges mid-stream), and a coordinator composes the final answer. Given the
// same hash k-partitioning the runtimes agree bit for bit (internal/stream's
// parity tests); cmd/coreset selects between them with -stream,
// examples/streaming_pipeline demonstrates the pipeline, and experiment E19
// compares their throughput and quality at fixed k.
//
// Feeding every runtime is a disk-backed data plane (internal/dataset):
// real graphs are ingested once — `coreset ingest` runs the lenient
// SNAP-style parser (tabs, CRLF, comments tolerated; self-loops and
// duplicate edges dropped and recorded) — and stored as segment files of
// varint-delta encoded edge batches under a JSON manifest carrying n, m,
// per-segment offsets and a sha256 content hash:
//
//	edge list ─▶ coreset ingest ─▶ ┌ manifest.json (n, m, offsets, sha256) ┐
//	generator ─▶                   └ edges.seg (varint-delta batches)      ┘
//	                                    │ ReadSegment (positioned reads,
//	                                    ▼  bounded resident budget)
//	            stream.DatasetSource ─▶ batch │ stream │ cluster │ service
//
// The codec is the same fuzz-hardened edge-batch encoding the cluster wire
// protocol ships, so bytes on disk and bytes on the wire never drift. A
// DatasetSource is restartable by construction (segments are seekable),
// which is exactly what cluster round replay requires; sources that are
// not — a non-seekable reader — fail replay with a typed
// stream.NotRestartableError naming the source kind instead of replaying
// wrong data. The service layer registers datasets by name from a store
// directory (coresetd -datasets) and keys cached results by the manifest's
// content hash, so a repeated job on a stored graph is answered with zero
// re-parse and zero re-read, regardless of the ID it was registered under.
//
// The cluster runtime (internal/cluster) makes the machines real: k worker
// OS processes (cmd/coresetworker, or self-spawned by cmd/coreset -cluster
// local) host the very same incremental builders behind a compact
// length-prefixed wire protocol — HELLO/ACK/SHARD/EOS/CORESET/ERROR frames
// over TCP, edge batches in the varint delta codec (graph.AppendEdgeBatch)
// that the simulated accounting also charges. The coordinator shards with
// the same seeded hash, so a cluster run is bit-for-bit identical to the
// in-process pipelines for the same (graph, seed, k) — the seed-parity
// tests in internal/cluster assert deep-equal coresets — while
// TotalCommBytes/MaxMachineBytes in the run report are measured off the
// sockets, with the simulated estimate alongside (EstCommBytes). Failures
// surface as typed *cluster.WorkerError values carrying a FailureKind
// taxonomy, and the retryable kinds — dial refused, connection drop, a
// frame stalled past Config.IOTimeout — do not abort the run: because the
// hash sharding is seeded, any machine's shard is deterministically
// recomputable, so the coordinator re-dials the lost worker (or promotes a
// Config.Spares standby) under capped exponential backoff and replays only
// the current round against it, bit-identical to the undisturbed run (the
// fault-injection tests in internal/cluster and the SIGKILL chaos drill in
// cmd/coreset pin this). An exhausted Config.MaxRetries budget fails the
// run with a terminal error wrapping ErrRetriesExhausted, handshake and
// protocol errors are never retried, concurrent secondary failures join
// behind the causally-first one via errors.Join, cancellation force-closes
// connections so nothing hangs, and workers drain gracefully on shutdown.
// Experiment E20 tabulates simulated vs measured
// communication as n and k scale, and BenchmarkClusterVsStream (baseline in
// BENCH_cluster.json) prices the wire against the in-process runtime.
//
// The runtimes themselves are task-agnostic: every task lives as a
// task.Descriptor in the internal/task registry — the per-machine
// incremental builder, the CORESET body codec, the coordinator-side
// composer, the batch reference pipeline and the parameter rules (UsesBeta,
// the multi-round wire byte) bundled behind one name and one wire byte —
// and batch, stream, cluster and the service all dispatch through it, with
// no per-task branches in any runtime. Registering a descriptor is the
// entire integration surface: the CLIs derive their accepted-task lists,
// usage strings and "unknown task" errors from task.Names(), shared
// validation (task.ValidateParams) rejects parameters a task does not
// declare with messages pinned byte-identical across the service and both
// CLIs, the service derives its cache keys and pre-creates its per-task
// service_jobs_total metric series from the same table, and the cluster
// wire protocol resolves task bytes through task.ByWire — a HELLO carrying
// an unknown byte fails with a typed *cluster.UnknownTaskError naming the
// byte and the registry's known range, with no protocol version bump
// needed. The proof of the interface is task "diversity"
// (internal/diversity), a composable core-set for dispersion maximization
// in the style of Indyk, Mahabadi, Mahdian and Mirrokni (arXiv:1506.06715):
// each machine summarizes its shard as Gonzalez greedy farthest-point
// k-centers over the vertex IDs it saw (line metric |u-v|) and the
// coordinator re-runs the same greedy over the union of the summaries.
// Its summary is a vertex set rather than an edge set — deliberately not
// matching-shaped — and it was added as one package plus one registry
// entry, seed-parity-checked across batch, stream and cluster like the
// built-in tasks.
//
// Beyond the paper's own summaries, internal/edcs implements the
// edge-degree constrained subgraph coreset of the follow-up work "Coresets
// Meet EDCS" (Assadi, Bateni, Bernstein, Mirrokni, Stein; arXiv:1711.03076):
// a subgraph H in which every H-edge has bounded endpoint H-degrees (≤ β)
// and every non-H-edge already sees β⁻ worth of them. A per-machine EDCS is
// a randomized composable coreset whose union contains a (3/2+ε)-approximate
// maximum matching — strictly better than Theorem 1's O(1) — at the same
// O~(n) size. The construction is edge insertion with degree-constraint
// repair, a pure function of the machine's arrival order, so EDCS runs are
// bit-for-bit identical across all four runtimes: task "edcs" is first-class
// in the CLI (-task edcs, with -beta), the streaming builders
// (stream.EDCS), the cluster wire protocol (the HELLO frame carries β, β⁻),
// and the service job API. Experiment E21 prices the EDCS against the
// Theorem 1 coreset (approximation ratio, coreset bytes, measured cluster
// communication) and BenchmarkEDCSVsMatchingCoreset (baseline in
// BENCH_edcs.json) compares the per-machine summary costs.
//
// The same paper's O(log log n)-round MPC algorithms come from *iterating*
// the sketch, and internal/rounds is that round-driver: round r shards its
// input over k_r machines, builds one EDCS per machine, unions the coresets
// (at most k·n·β/2 edges — a geometric shrink on dense inputs) and reshards
// the union over k_{r+1} = ⌊√k_r⌋ machines with a fresh per-round seed,
// until the configured cap or until the union stops shrinking; the final
// matching is composed over the last (much smaller) union. Round 0 uses the
// root seed, so a rounds=1 run reproduces the single-round EDCS pipeline
// bit for bit, and the whole schedule is seed-parity-checked across batch,
// stream and cluster. In cluster mode one reused session drives all rounds:
// the worker connections are dialed once, a single HELLO carries the round
// cap (task byte 4 on the same protocol version), each round is a
// SHARD*/EOS/CORESET exchange with a fresh per-round EDCS machine, and
// every round's communication is measured off the TCP connections into the
// run report's per-round breakdown (graph.RunReport.RoundStats). The driver
// is exposed as cmd/coreset -rounds N, the service job field "rounds"
// (folded into the result-cache key), cmd/coresetload -rounds, experiment
// E22 (rounds vs quality vs communication) and BenchmarkMultiRoundEDCS
// (baseline in BENCH_rounds.json); examples/multiround_mpc walks the
// per-round shrink end to end.
//
// Above both runtimes sits the service layer (internal/service, served by
// cmd/coresetd): a long-running daemon that keeps graphs and their composed
// results resident, which is how the paper frames randomized composable
// coresets in the first place — summaries computed once and reused across
// many queries. Its architecture:
//
//	                   ┌──────────────────────── coresetd ────────────────────────┐
//	POST /v1/graphs ──▶│ Registry: id → uploaded edges | gen spec | dataset ref   │
//	                   │           (ref-counted, LRU-evicted)                     │
//	                   │      │ Acquire/Release                                   │
//	POST /v1/jobs ────▶│ Manager: bounded queue ─▶ worker pool ─▶ batch pipeline  │
//	GET  /v1/jobs/{id} │          (cancel via context)         └▶ stream pipeline │
//	                   │      │ publish on success                                │
//	GET  /v1/stats ───▶│ Cache: (graph, task, k, seed, mode, beta, rounds)        │
//	                   │        (LRU, hit/miss counters)                          │
//	                   └──────────────────────────────────────────────────────────┘
//
// A job names a registered graph, a task (any registry entry — matching,
// vc, edcs or diversity), k, a seed
// and a mode (batch, stream, or — when the daemon was started with -cluster
// — cluster, which dispatches the run to the configured coresetworker
// fleet).
// Because every runtime is a deterministic function of the seed, the
// composed run report is cacheable: a repeated query is answered from
// memory without re-running any pipeline (the cache-hit counters in
// /v1/stats make this observable, and BENCH_service.json records the
// cold-vs-hit latency gap). Streaming and cluster jobs honor cancellation
// at batch granularity; on shutdown the daemon drains in-flight jobs before
// exiting. The CLI and the service share graph.RunReport as their result
// schema (cmd/coreset -json), and cmd/coresetload is the matching load
// generator (-target service drives the HTTP API, -target cluster drives a
// worker fleet directly).
//
// Observability (internal/obs) is dependency-free and off by default: the
// runtimes report through an injected obs.Sink and a nil-safe *obs.Tracer,
// both free when unset (BenchmarkObsOverhead, baseline BENCH_obs.json).
// Tracing is cross-process: the coordinator derives a run ID from the root
// seed (deterministic, so fixed-seed traces reproduce) or mints one per
// daemon job, ships it to every worker in the HELLO frame, and a worker
// started with -trace stamps its own spans with that ID — one grep over the
// combined slog streams reconstructs a distributed run. The workers answer
// with in-band telemetry: a TELEM frame per round carrying phase wall times
// (shard decode, insert/repair, coreset encode) and build counters, which
// the coordinator folds into the run report's per-machine breakdown
// (graph.MachineStats; replayed machines report their replacement attempt).
// The same breakdown exports as a Perfetto-loadable Chrome trace timeline
// (cmd/coreset -trace-out). Both daemons expose the operational surface —
// /metrics in Prometheus text exposition, /healthz, pprof — via -admin
// (cmd/coresetd, cmd/coresetworker), and cmd/coresetload -scrape snapshots
// any set of those surfaces around a load run and prints per-URL counter
// deltas.
package repro
