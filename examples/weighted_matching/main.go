// Weighted matching via Crouch-Stubbs weight classes (paper Section 1.1).
//
// The unweighted coreset theorem extends to weighted matching by bucketing
// edges into geometric weight classes, computing a per-class maximum
// matching on each machine, and composing classes from heaviest to
// lightest. This example runs the pipeline on a heavy-tailed workload and
// compares against the centralized greedy 1/2-approximation.
//
// Run: go run ./examples/weighted_matching
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	const (
		n    = 10000
		k    = 8
		seed = 11
	)
	r := rng.New(seed)
	wg := gen.WeightedChungLu(n, 2.0, n/16, 10.0, r)
	fmt.Printf("input: power-law graph, n=%d, m=%d, total weight %.0f\n\n",
		wg.N, len(wg.Edges), graph.TotalWeight(wg.Edges))

	// Random k-partition of the weighted edges.
	parts := make([][]graph.WEdge, k)
	for _, e := range wg.Edges {
		i := r.Intn(k)
		parts[i] = append(parts[i], e)
	}

	tb := stats.NewTable("weighted matching: distributed coresets vs centralized greedy",
		"eps (class base 1+eps)", "classes/machine", "coreset edges/machine",
		"distributed weight", "central greedy weight", "central/distributed")
	central := graph.TotalWeight(core.GreedyWeightedMatching(wg.N, wg.Edges))
	for _, eps := range []float64{0.25, 0.5, 1.0, 2.0} {
		coresets := make([]*core.WeightedCoreset, k)
		var classes, edges stats.Summary
		for i, p := range parts {
			coresets[i] = core.ComputeWeightedCoreset(wg.N, p, eps)
			classes.Add(float64(len(coresets[i].Classes)))
			edges.Add(float64(core.WeightedCoresetEdges(coresets[i])))
		}
		dist := graph.TotalWeight(core.ComposeWeightedMatching(wg.N, coresets))
		tb.AddRow(eps,
			fmt.Sprintf("%.1f", classes.Mean()),
			fmt.Sprintf("%.0f", edges.Mean()),
			fmt.Sprintf("%.0f", dist),
			fmt.Sprintf("%.0f", central),
			fmt.Sprintf("%.2f", central/dist))
	}
	tb.Fprint(os.Stdout)
	fmt.Println("\nsmaller eps -> more classes (more space), tighter weights per class;")
	fmt.Println("the paper's bound is a factor-2 extra loss with O(log n) space overhead.")
}
