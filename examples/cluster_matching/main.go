// Example cluster_matching runs the paper's Theorem 1 pipeline over the
// cluster runtime: k workers serving the wire protocol on loopback TCP, a
// coordinator hash-sharding a generated graph across them, and a composed
// maximum matching whose communication cost is measured — actual bytes off
// the sockets — rather than estimated. It then replays the identical run
// through the in-process streaming runtime to show the answers match bit
// for bit and the measured bytes sit just above the simulated estimate
// (frame headers are the only overhead).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/stream"
)

func main() {
	const (
		n    = 20000
		deg  = 8.0
		k    = 4
		seed = 42
	)
	addrs, shutdown, err := cluster.ServeLoopback(k)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	fmt.Printf("started %d workers: %v\n", k, addrs)

	src := stream.NewIterSource(n, func() gen.EdgeIter { return gen.GNPIter(n, deg/n, rng.New(seed)) })
	m, st, err := cluster.Matching(context.Background(), src, cluster.Config{Workers: addrs, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster:    matching %d edges over %d edges total\n", m.Size(), st.EdgesTotal)
	fmt.Printf("            measured comm %d B (max machine %d B), estimate %d B, shard traffic %d B\n",
		st.TotalCommBytes, st.MaxMachineBytes, st.EstCommBytes, st.ShardBytes)

	src = stream.NewIterSource(n, func() gen.EdgeIter { return gen.GNPIter(n, deg/n, rng.New(seed)) })
	sm, sst, err := stream.Matching(src, stream.Config{K: k, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-process: matching %d edges, simulated comm %d B\n", sm.Size(), sst.TotalCommBytes)
	fmt.Printf("answers identical: %v; estimate identical: %v\n",
		m.Size() == sm.Size(), st.EstCommBytes == sst.TotalCommBytes)
}
