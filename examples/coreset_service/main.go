// Example coreset_service runs the coresetd service in-process and walks
// the whole API surface: register a graph by generator spec, submit a
// streaming matching job, long-poll it to completion, replay the same query
// to show it served from the result cache, and read the stats counters.
// It is the programmatic twin of `coresetd` + `curl`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/service"
)

func main() {
	svc := service.New(service.Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("service listening on", base)

	// 1. Register a graph by generator spec: nothing is materialized; the
	// registry stores O(1) parameters and jobs stream the edges on demand.
	var info service.GraphInfo
	post(base+"/v1/graphs", service.CreateGraphRequest{
		Gen: &service.GenSpec{Name: "gnp", N: 10000, Deg: 8, Seed: 1},
	}, &info)
	fmt.Printf("registered graph %s (n=%d)\n", info.ID, info.N)

	// 2. Submit a streaming matching job and long-poll it to completion.
	req := service.CreateJobRequest{Graph: info.ID, Task: service.TaskMatching, K: 4, Seed: 7}
	var job service.JobView
	post(base+"/v1/jobs", req, &job)
	for job.State == string(service.JobQueued) || job.State == string(service.JobRunning) {
		get(base+"/v1/jobs/"+job.ID+"?wait=2s", &job)
	}
	fmt.Printf("job %s: %s, matching size %d in %.1fms (%0.f edges/sec)\n",
		job.ID, job.State, job.Result.SolutionSize, job.Result.DurationMS, job.Result.EdgesPerSec)

	// 3. The same query again: answered from the result cache, no pipeline.
	var again service.JobView
	post(base+"/v1/jobs", req, &again)
	fmt.Printf("job %s: %s, cached=%v, same size %d\n",
		again.ID, again.State, again.Cached, again.Result.SolutionSize)

	// 4. Stats: one miss (the cold run), one hit (the replay).
	var stats service.StatsView
	get(base+"/v1/stats", &stats)
	fmt.Printf("stats: %d jobs done, cache %d hit / %d miss, %d graph(s) resident\n",
		stats.Jobs.Done, stats.Cache.Hits, stats.Cache.Misses, stats.Graphs.Count)

	// 5. Graceful shutdown: stop the listener, then drain the job pool.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}

func post(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatal(err)
	}
}
