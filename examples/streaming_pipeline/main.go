// Streaming pipeline demo: the deployment shape of the paper's model.
//
// A G(n, p) workload is *generated edge by edge* — the full graph never
// exists in memory — and flows through the streaming sharded runtime:
//
//	generator --> hash sharder --> k machine goroutines --> coordinator
//
// Each machine maintains its coreset incrementally as its share arrives
// (greedy matching telemetry for Theorem 1, online degree peeling for
// Theorem 2) and ships only the summary. The demo prints what each stage
// cost: edges routed, edges stored vs received (vertex cover's online
// peeling discards covered edges on the fly), live vs exact summary sizes,
// communication bytes and end-to-end throughput.
//
// Run: go run ./examples/streaming_pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/rng"
	"repro/internal/stream"
)

func main() {
	const (
		n    = 200000
		deg  = 8.0
		k    = 16
		seed = 1
	)
	p := deg / float64(n)
	fmt.Printf("input: streaming G(n=%d, p=%.2g) — never materialized — into k=%d machines\n\n", n, p, k)

	// --- Theorem 1: matching coresets over the stream.
	src := stream.NewIterSource(n, func() gen.EdgeIter { return gen.GNPIter(n, p, rng.New(seed)) })
	m, st, err := stream.Matching(src, stream.Config{K: k, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	partLo, partHi := minmax(st.PartEdges)
	liveLo, liveHi := minmax(st.Live)
	csLo, csHi := minmax(st.CoresetEdges)
	fmt.Println("maximum matching (Theorem 1):")
	fmt.Printf("  routed:        %d edges in %d batches\n", st.EdgesTotal, st.Batches)
	fmt.Printf("  per machine:   %d..%d edges received\n", partLo, partHi)
	fmt.Printf("  live greedy:   %d..%d matched online (>= 1/2 of each machine's optimum)\n", liveLo, liveHi)
	fmt.Printf("  summaries:     %d..%d edges, %d bytes total, %d bytes max machine\n",
		csLo, csHi, st.TotalCommBytes, st.MaxMachineBytes)
	fmt.Printf("  composed:      %d edges\n", m.Size())
	fmt.Printf("  throughput:    %.2f Medges/sec end to end\n\n", st.EdgesPerSec()/1e6)

	// --- Theorem 2: VC coresets with online peeling, on the paper's star
	// example (Section 3.2). Online level-1 peeling fires for vertices whose
	// per-machine degree reaches n/(4k) — hubs with Θ(n) global degree. Each
	// machine fixes the star's center the moment its share of the center's
	// edges crosses the threshold, then discards the rest of the stream.
	fmt.Printf("input: streaming star K_{1,%d} into k=%d machines\n\n", n-1, k)
	src = stream.NewIterSource(n, func() gen.EdgeIter { return gen.StarIter(n) })
	cover, st2, err := stream.VertexCover(src, stream.Config{K: k, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	stored, received := 0, 0
	for i := range st2.PartEdges {
		stored += st2.StoredEdges[i]
		received += st2.PartEdges[i]
	}
	peelLo, peelHi := minmax(st2.Live)
	fmt.Println("minimum vertex cover (Theorem 2):")
	fmt.Printf("  peeled online: %d..%d vertices per machine fixed into the cover mid-stream\n", peelLo, peelHi)
	fmt.Printf("  memory:        machines stored %d of %d routed edges (online peeling dropped %.1f%%)\n",
		stored, received, 100*float64(received-stored)/float64(max(received, 1)))
	fmt.Printf("  summaries:     %d bytes total communication\n", st2.TotalCommBytes)
	fmt.Printf("  composed:      %d vertices\n", len(cover))
	fmt.Printf("  throughput:    %.2f Medges/sec end to end\n", st2.EdgesPerSec()/1e6)
}

func minmax(xs []int) (int, int) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
