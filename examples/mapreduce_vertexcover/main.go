// MapReduce vertex cover: the paper's 2-round coreset algorithm vs the
// filtering baseline of Lattanzi et al. [46].
//
// The example runs both algorithms on the same graph in the simulated
// Karloff-Suri-Vassilvitskii model (k = sqrt(n) machines) and prints rounds,
// per-machine memory and solution quality — reproducing the paper's
// Section 1.1 MapReduce claim.
//
// Run: go run ./examples/mapreduce_vertexcover
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/vcover"
)

func main() {
	const seed = 3
	r := rng.New(seed)
	g := gen.GNP(10000, 40/10000.0, r)
	k := mapreduce.DefaultK(g.N)
	lb := matching.MaximalGreedy(g.N, g.Edges).Size() // VC(G) >= |any maximal matching|
	fmt.Printf("input: G(n=%d, m=%d), k=ceil(sqrt(n))=%d machines, VC lower bound %d\n\n",
		g.N, g.M(), k, lb)

	tb := stats.NewTable("MapReduce comparison (vertex cover and matching)",
		"algorithm", "rounds", "max machine load (edges)", "solution", "quality")

	cover, st := mapreduce.CoresetVCMR(g, k, false, seed, 0)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		log.Fatalf("coreset cover infeasible: %v", err)
	}
	tb.AddRow("vc: coreset (2 rounds)", st.Rounds, st.MaxMachineLoad,
		fmt.Sprintf("%d vertices", len(cover)),
		fmt.Sprintf("%.2fx LB", float64(len(cover))/float64(lb)))

	cover1, st1 := mapreduce.CoresetVCMR(g, k, true, seed, 0)
	tb.AddRow("vc: coreset (random input)", st1.Rounds, st1.MaxMachineLoad,
		fmt.Sprintf("%d vertices", len(cover1)),
		fmt.Sprintf("%.2fx LB", float64(len(cover1))/float64(lb)))

	fcover, stf := mapreduce.FilteringVC(g, g.N, seed)
	if err := vcover.Verify(g.N, g.Edges, fcover); err != nil {
		log.Fatalf("filtering cover infeasible: %v", err)
	}
	tb.AddRow("vc: filtering [46]", stf.Rounds, stf.MaxMachineLoad,
		fmt.Sprintf("%d vertices", len(fcover)),
		fmt.Sprintf("%.2fx LB", float64(len(fcover))/float64(lb)))

	opt := matching.Maximum(g.N, g.Edges).Size()
	m, stm := mapreduce.CoresetMatchingMR(g, k, false, seed, 0)
	tb.AddRow("matching: coreset (2 rounds)", stm.Rounds, stm.MaxMachineLoad,
		fmt.Sprintf("%d edges", m.Size()),
		fmt.Sprintf("%.3f of OPT", float64(m.Size())/float64(opt)))

	fm, stfm := mapreduce.FilteringMatching(g, g.N, seed)
	tb.AddRow("matching: filtering [46]", stfm.Rounds, stfm.MaxMachineLoad,
		fmt.Sprintf("%d edges", fm.Size()),
		fmt.Sprintf("%.3f of OPT", float64(fm.Size())/float64(opt)))

	tb.Fprint(os.Stdout)
	fmt.Println("\nthe coreset algorithm always finishes in 2 rounds (1 when the input")
	fmt.Println("is already randomly distributed); filtering needs more rounds as memory tightens.")
}
