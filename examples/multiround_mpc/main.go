// Example multiround_mpc walks the multi-round MPC algorithm of "Coresets
// Meet EDCS" (arXiv:1711.03076) end to end: starting from k machines, each
// round shards the current graph, builds one EDCS per machine, unions the
// coresets into a much smaller graph, and reshards it over ⌊√k⌋ machines —
// until the union stops shrinking or the round cap is hit. The example runs
// the identical schedule three ways:
//
//  1. single-round (the baseline everyone else composes against),
//  2. multi-round over the in-process batch driver, printing the per-round
//     shrink, and
//  3. multi-round over a real loopback-TCP cluster through one reused
//     session (one HELLO per run), where every round's communication is
//     measured off the sockets.
//
// The composed matchings agree bit for bit across all three, while the
// graph the coordinator's exact matcher must chew through shrinks
// geometrically with each round — the whole point of spending rounds.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/rounds"
	"repro/internal/stream"
)

func main() {
	const (
		n     = 20000
		deg   = 24.0
		k     = 16
		seed  = 42
		beta  = 8
		rcCap = 3
	)
	g := gen.GNP(n, deg/n, rng.New(seed))
	opt := matching.Maximum(g.N, g.Edges).Size()
	p := edcs.ParamsForBeta(beta)
	fmt.Printf("graph: n=%d m=%d, maximum matching %d\n\n", g.N, g.M(), opt)

	// 1. Single-round EDCS pipeline: the baseline.
	m1, st1 := edcs.Distributed(g, k, 0, seed, p)
	fmt.Printf("single round:  matching %d (ratio %.4f), composed over %d union edges, comm %d B\n\n",
		m1.Size(), float64(m1.Size())/float64(opt), st1.CompositionEdges, st1.TotalCommBytes)

	// 2. Multi-round driver, in process: same round-0 seed (so rounds=1
	// would reproduce the baseline exactly), then union → reshard → rebuild
	// with the ⌊√k⌋ schedule.
	cfg := rounds.Config{K: k, Rounds: rcCap, Seed: seed, Params: p}
	m2, st2, err := rounds.Batch(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-round (batch driver, cap %d):\n", rcCap)
	for _, rs := range st2.Rounds {
		fmt.Printf("  round %d: k=%-2d input %6d edges -> union %6d edges (%.1f%% kept), comm %d B\n",
			rs.Round, rs.K, rs.InputEdges, rs.UnionEdges,
			100*float64(rs.UnionEdges)/float64(rs.InputEdges), rs.TotalCommBytes)
	}
	fmt.Printf("  matching %d (ratio %.4f); exact matcher composed %d edges instead of %d\n\n",
		m2.Size(), float64(m2.Size())/float64(opt), st2.CompositionEdges, st1.CompositionEdges)

	// 3. The same schedule over a real TCP cluster: one session, one HELLO,
	// the connections reused across rounds, every round's bytes measured.
	addrs, shutdown, err := cluster.ServeLoopback(k)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()
	m3, st3, err := rounds.Cluster(context.Background(), stream.NewGraphSource(g),
		cluster.Config{Workers: addrs, Seed: seed}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-round (cluster, %d workers on loopback TCP):\n", k)
	for _, rs := range st3.Rounds {
		fmt.Printf("  round %d: k=%-2d measured %6d B (est %6d B, meas/est %.3f), shard traffic %d B\n",
			rs.Round, rs.K, rs.TotalCommBytes, rs.EstCommBytes,
			float64(rs.TotalCommBytes)/float64(rs.EstCommBytes), rs.ShardBytes)
	}
	fmt.Printf("  matching %d\n\n", m3.Size())

	switch {
	case m2.Size() != m3.Size():
		log.Fatal("BUG: batch and cluster multi-round runs disagree")
	case st2.RoundsRun != st3.RoundsRun:
		log.Fatal("BUG: batch and cluster ran different round counts")
	default:
		fmt.Printf("parity: batch and cluster agree (%d rounds, matching %d); ", st2.RoundsRun, m2.Size())
		fmt.Printf("rounds traded %d extra comm bytes for a %.1fx smaller composition input\n",
			st2.TotalCommBytes-st1.TotalCommBytes,
			float64(st1.CompositionEdges)/float64(st2.CompositionEdges))
	}
}
