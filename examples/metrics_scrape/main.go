// Example metrics_scrape runs the coresetd service in-process with a
// tracer attached and walks the observability surface: submit a mix of
// cold and cached jobs, scrape GET /metrics, and print the counter and
// histogram families that describe what just happened — the same
// exposition a Prometheus server would collect. It also shows the
// library-level side: an obs.Registry fed by the cluster/rounds sinks can
// be rendered directly, without any HTTP in between.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/rounds"
	"repro/internal/service"
	"repro/internal/stream"
)

func main() {
	// Part 1: the service surface. A tracer on Config logs one span per job
	// to stderr, each stamped with a fresh run ID.
	svc := service.New(service.Config{
		Workers: 2,
		Tracer:  obs.NewTextTracer(os.Stderr, ""),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()

	var info service.GraphInfo
	post(base+"/v1/graphs", service.CreateGraphRequest{
		Gen: &service.GenSpec{Name: "gnp", N: 5000, Deg: 8, Seed: 1},
	}, &info)

	// Three cold jobs (distinct seeds) and one cache hit.
	for _, seed := range []uint64{1, 2, 3, 1} {
		runJob(base, service.CreateJobRequest{Graph: info.ID, Task: service.TaskMatching, K: 4, Seed: seed})
	}

	// Scrape the exposition the way Prometheus would and show the families
	// that tell the story: job totals, cache traffic, the latency histogram.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- GET /metrics (selected families) --")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.Contains(line, "service_jobs_") || strings.Contains(line, "service_cache_") ||
			strings.Contains(line, "service_job_duration_seconds_count") {
			fmt.Println(line)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	// Part 2: the library surface. The runtimes report through an injected
	// obs.Sink; a RegistrySink turns those raw events into registered
	// counters and histograms on a registry you render yourself.
	reg := obs.NewRegistry()
	sink := obs.NewRegistrySink(reg)
	g := gen.GNP(5000, 8.0/5000, rng.New(7))
	_, st, err := rounds.Stream(context.Background(), stream.NewGraphSource(g),
		rounds.Config{K: 4, Rounds: 3, Seed: 7, Params: edcs.ParamsForBeta(0), Obs: sink})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- multi-round run: %d rounds, %d comm bytes --\n", st.RoundsRun, st.TotalCommBytes)
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	parsed, err := obs.ParseText(&buf)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(parsed))
	for name := range parsed {
		if strings.HasPrefix(name, "rounds_") && !strings.Contains(name, "_bucket") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s %g\n", name, parsed[name])
	}
}

func runJob(base string, req service.CreateJobRequest) {
	var job service.JobView
	post(base+"/v1/jobs", req, &job)
	for job.State == string(service.JobQueued) || job.State == string(service.JobRunning) {
		get(base+"/v1/jobs/"+job.ID+"?wait=2s", &job)
	}
	if job.State != string(service.JobDone) {
		log.Fatalf("job %s: %s", job.ID, job.State)
	}
	fmt.Printf("job %s done (cached=%v, size %d)\n", job.ID, job.Cached, job.Result.SolutionSize)
}

func post(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatal(err)
	}
}
