// Quickstart: the smallest end-to-end use of the library.
//
// It generates a random graph, simulates k machines with a random edge
// partition, computes the paper's coresets (Theorem 1 for matching,
// Theorem 2 for vertex cover) and composes the final solutions, reporting
// quality against centralized references.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/vcover"
)

func main() {
	const (
		n    = 20000
		k    = 16
		seed = 1
	)
	r := rng.New(seed)
	g := gen.GNP(n, 10/float64(n), r)
	fmt.Printf("input: G(n=%d, m=%d), k=%d machines\n\n", g.N, g.M(), k)

	// --- Maximum matching via randomized composable coresets (Theorem 1).
	m, st := core.DistributedMatching(g, k, 0, seed)
	if err := matching.Verify(g.N, g.Edges, m); err != nil {
		log.Fatalf("invalid matching: %v", err)
	}
	opt := matching.Maximum(g.N, g.Edges).Size()
	fmt.Println("maximum matching:")
	fmt.Printf("  centralized optimum:  %d edges\n", opt)
	fmt.Printf("  distributed coresets: %d edges (ratio %.3f)\n", m.Size(),
		float64(opt)/float64(m.Size()))
	fmt.Printf("  communication:        %d bytes total, %d bytes max/machine\n\n",
		st.TotalCommBytes, st.MaxMachineBytes)

	// --- Minimum vertex cover via VC-Coreset (Theorem 2).
	cover, st2 := core.DistributedVertexCover(g, k, 0, seed)
	if err := vcover.Verify(g.N, g.Edges, cover); err != nil {
		log.Fatalf("infeasible cover: %v", err)
	}
	lb := matching.MaximalGreedy(g.N, g.Edges).Size() // VC >= any maximal matching
	fmt.Println("minimum vertex cover:")
	fmt.Printf("  lower bound (matching): %d\n", lb)
	fmt.Printf("  distributed coresets:   %d vertices (<= %.2fx LB)\n",
		len(cover), float64(len(cover))/float64(lb))
	fmt.Printf("  communication:          %d bytes total\n", st2.TotalCommBytes)
}
