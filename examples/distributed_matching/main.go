// Distributed matching in the simultaneous coordinator model.
//
// This example runs several simultaneous protocols over the same randomly
// partitioned input — the paper's Theorem 1 coreset, the Remark 5.2
// subsampled variant at different α, the greedy-maximal negative baseline
// and the full-graph ceiling — and prints an accuracy/communication
// trade-off table. It then repeats the coreset protocol under an
// adversarial partitioning of a trap instance to show why the *randomized*
// part of "randomized composable coresets" matters.
//
// Run: go run ./examples/distributed_matching
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	const (
		n    = 16384
		k    = 16
		seed = 7
	)
	root := rng.New(seed)
	g := gen.GNP(n, 12/float64(n), root.Split(0))
	opt := matching.Maximum(g.N, g.Edges).Size()
	fmt.Printf("input: G(n=%d, m=%d), k=%d machines, MM(G)=%d\n\n", g.N, g.M(), k, opt)

	tb := stats.NewTable("simultaneous protocols (one message per machine)",
		"protocol", "matching", "ratio", "total bytes", "max msg bytes")
	protocols := []protocol.Protocol{
		protocol.FullGraphProtocol{Task: "matching"},
		protocol.MatchingCoresetProtocol{},
		protocol.SubsampledMatchingProtocol{Alpha: 2},
		protocol.SubsampledMatchingProtocol{Alpha: 4},
		protocol.SubsampledMatchingProtocol{Alpha: 8},
		protocol.GreedyMaximalProtocol{},
	}
	for _, p := range protocols {
		res, err := protocol.Run(g, k, p, seed, 0)
		if err != nil {
			log.Fatal(err)
		}
		size := len(res.Solution.MatchingEdges)
		tb.AddRow(p.Name(), size,
			fmt.Sprintf("%.3f", float64(opt)/float64(size)),
			res.TotalBytes, res.MaxMessageBytes)
	}
	tb.Fprint(os.Stdout)
	fmt.Println()

	// Random vs adversarial partitioning on the greedy-trap instance.
	inst := gen.GreedyTrap(4000, k, root.Split(1))
	tg := inst.B.ToGraph()
	fmt.Printf("trap instance: n=%d, m=%d, planted matching %d\n", tg.N, tg.M(), inst.N)

	tb2 := stats.NewTable("same coreset, different partitioning",
		"partitioning", "matching", "ratio vs planted")
	for _, strat := range []string{"random", "adversarial (by right endpoint)"} {
		var parts [][]graph.Edge
		if strat == "random" {
			parts = partition.RandomK(tg.Edges, k, root.Split(2))
		} else {
			assign := make([]int, len(tg.Edges))
			for i, e := range tg.Edges {
				assign[i] = int(e.V) % k
			}
			parts = partition.ByAssignment(tg.Edges, k, assign)
		}
		coresets := core.MapParts(parts, 0, func(i int, part []graph.Edge) []graph.Edge {
			return core.MatchingCoreset(tg.N, part)
		})
		got := core.ComposeMatching(tg.N, coresets).Size()
		tb2.AddRow(strat, got, fmt.Sprintf("%.2f", float64(inst.N)/float64(got)))
	}
	tb2.Fprint(os.Stdout)
}
