// Benchmark harness: one benchmark per experiment (E1..E22, the paper's
// "tables and figures" plus the systems experiments) and micro-benchmarks of
// the hot kernels. Each
// experiment benchmark executes the same code path as cmd/experiments -quick
// and reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every measured quantity in EXPERIMENTS.md at reduced scale.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/edcs"
	"repro/internal/expt"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/matching"
	"repro/internal/partition"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/rounds"
	"repro/internal/stream"
)

// benchExperiment runs a registered experiment end-to-end per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := expt.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := expt.Config{Seed: 1, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Run(cfg)
		if len(res.Tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1MatchingCoreset(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2VCCoreset(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3GreedyCoresetGap(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4MinVCCoresetGap(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5MatchingLB(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6VCLB(b *testing.B)                 { benchExperiment(b, "E6") }
func BenchmarkE7SubsampledProtocol(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE8GroupedVC(b *testing.B)            { benchExperiment(b, "E8") }
func BenchmarkE9MapReduce(b *testing.B)            { benchExperiment(b, "E9") }
func BenchmarkE10RandomVsAdversarial(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Weighted(b *testing.B)            { benchExperiment(b, "E11") }
func BenchmarkE12Concentration(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Parallel(b *testing.B)            { benchExperiment(b, "E13") }
func BenchmarkE14ExactKernels(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15WeightedVC(b *testing.B)          { benchExperiment(b, "E15") }
func BenchmarkE16HVPGame(b *testing.B)             { benchExperiment(b, "E16") }
func BenchmarkE17GreedyTrajectory(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18PeelingSandwich(b *testing.B)     { benchExperiment(b, "E18") }
func BenchmarkE19StreamVsBatch(b *testing.B)       { benchExperiment(b, "E19") }
func BenchmarkE20ClusterComm(b *testing.B)         { benchExperiment(b, "E20") }
func BenchmarkE21EDCS(b *testing.B)                { benchExperiment(b, "E21") }
func BenchmarkE22MultiRoundMPC(b *testing.B)       { benchExperiment(b, "E22") }

// --- kernel micro-benchmarks -------------------------------------------

func benchGraph(n int, avgDeg float64, seed uint64) *graph.Graph {
	return gen.GNP(n, avgDeg/float64(n), rng.New(seed))
}

func BenchmarkKernelMatchingCoreset(b *testing.B) {
	g := benchGraph(16384, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MatchingCoreset(g.N, g.Edges)
	}
}

func BenchmarkKernelVCCoreset(b *testing.B) {
	g := benchGraph(16384, 32, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeVCCoreset(g.N, 8, g.Edges)
	}
}

func BenchmarkKernelRandomPartition(b *testing.B) {
	g := benchGraph(16384, 16, 3)
	r := rng.New(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.RandomK(g.Edges, 16, r)
	}
}

func BenchmarkKernelComposeMatching(b *testing.B) {
	g := benchGraph(16384, 8, 5)
	parts := partition.RandomK(g.Edges, 8, rng.New(6))
	coresets := make([][]graph.Edge, len(parts))
	for i, p := range parts {
		coresets[i] = core.MatchingCoreset(g.N, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComposeMatching(g.N, coresets)
	}
}

func BenchmarkKernelGreedyMatchCombine(b *testing.B) {
	g := benchGraph(16384, 8, 7)
	parts := partition.RandomK(g.Edges, 8, rng.New(8))
	coresets := make([][]graph.Edge, len(parts))
	for i, p := range parts {
		coresets[i] = core.MatchingCoreset(g.N, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedyMatchCombine(g.N, coresets)
	}
}

func BenchmarkPipelineDistributedMatching(b *testing.B) {
	g := benchGraph(16384, 8, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := core.DistributedMatching(g, 16, 0, uint64(i))
		if m.Size() == 0 {
			b.Fatal("empty matching")
		}
	}
}

func BenchmarkPipelineDistributedVC(b *testing.B) {
	g := benchGraph(16384, 16, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cover, _ := core.DistributedVertexCover(g, 16, 0, uint64(i))
		if len(cover) == 0 {
			b.Fatal("empty cover")
		}
	}
}

func BenchmarkProtocolMatchingEndToEnd(b *testing.B) {
	g := benchGraph(16384, 8, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := protocol.Run(g, 16, protocol.MatchingCoresetProtocol{}, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalBytes), "bytes/op")
	}
}

func BenchmarkMapReduceCoreset(b *testing.B) {
	g := benchGraph(4096, 16, 12)
	k := mapreduce.DefaultK(g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapreduce.CoresetMatchingMR(g, k, false, uint64(i), 0)
	}
}

func BenchmarkMapReduceFiltering(b *testing.B) {
	g := benchGraph(4096, 16, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mapreduce.FilteringMatching(g, g.N, uint64(i))
	}
}

// BenchmarkEDCSVsMatchingCoreset prices the two per-machine summaries on
// the same partition: the EDCS (insertion + degree-constraint repair, edge
// list of ~beta*n/2 edges) against the Theorem 1 maximum matching (exact
// matcher, <= n/2 edges). Reported metrics: per-op wall time plus the
// coreset sizes in edges and encoded bytes (the communication the paper
// counts). Baseline numbers are committed in BENCH_edcs.json.
func BenchmarkEDCSVsMatchingCoreset(b *testing.B) {
	g := benchGraph(16384, 24, 31)
	part := partition.HashK(g.Edges, 8, 31)[0] // one machine's share
	p := edcs.ParamsForBeta(16)
	b.Run("edcs", func(b *testing.B) {
		b.ReportAllocs()
		var cs []graph.Edge
		for i := 0; i < b.N; i++ {
			cs = edcs.Coreset(g.N, part, p)
		}
		b.ReportMetric(float64(len(cs)), "coresetedges")
		b.ReportMetric(float64(core.CoresetSizeBytes(cs)), "coresetbytes")
	})
	b.Run("matching", func(b *testing.B) {
		b.ReportAllocs()
		var cs []graph.Edge
		for i := 0; i < b.N; i++ {
			cs = core.MatchingCoreset(g.N, part)
		}
		b.ReportMetric(float64(len(cs)), "coresetedges")
		b.ReportMetric(float64(core.CoresetSizeBytes(cs)), "coresetbytes")
	})
}

// BenchmarkMultiRoundEDCS prices the multi-round MPC driver
// (internal/rounds) at increasing round caps on one dense input: every extra
// round adds per-machine EDCS rebuild work and another wave of coreset
// messages (commbytes grows) but shrinks the union the coordinator must run
// the exact matcher over (composeedges falls) — which is why deeper runs can
// be FASTER end to end: the exact matcher dominates, and it now sees a far
// smaller graph. Baseline numbers are committed in BENCH_rounds.json.
func BenchmarkMultiRoundEDCS(b *testing.B) {
	g := benchGraph(16384, 24, 31)
	p := edcs.ParamsForBeta(8)
	for _, rc := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("rounds=%d", rc), func(b *testing.B) {
			b.ReportAllocs()
			var st *rounds.Stats
			for i := 0; i < b.N; i++ {
				m, rst, err := rounds.Batch(g, rounds.Config{K: 16, Rounds: rc, Seed: 31, Params: p})
				if err != nil {
					b.Fatal(err)
				}
				if m.Size() == 0 {
					b.Fatal("empty matching")
				}
				st = rst
			}
			b.ReportMetric(float64(st.RoundsRun), "rounds")
			b.ReportMetric(float64(st.CompositionEdges), "composeedges")
			b.ReportMetric(float64(st.TotalCommBytes), "commbytes")
		})
	}
}

// BenchmarkStreamPipeline measures the streaming sharded runtime end to end
// (source -> hash sharder -> k machines -> coordinator) and reports edge
// throughput.
func BenchmarkStreamPipeline(b *testing.B) {
	g := benchGraph(16384, 8, 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _, err := stream.Matching(stream.NewGraphSource(g), stream.Config{K: 16, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if m.Size() == 0 {
			b.Fatal("empty matching")
		}
	}
	b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
}

// BenchmarkClusterVsStream compares the cluster runtime (k worker processes'
// worth of machines behind real TCP on loopback, measured wire bytes)
// against the in-process streaming runtime on the same (graph, seed, k).
// The answers are identical by construction; the benchmark prices the wire.
// Baseline numbers are committed in BENCH_cluster.json.
func BenchmarkClusterVsStream(b *testing.B) {
	g := benchGraph(16384, 8, 23)
	const k = 8
	addrs, shutdown, err := cluster.ServeLoopback(k)
	if err != nil {
		b.Fatal(err)
	}
	defer shutdown()
	b.Run("cluster", func(b *testing.B) {
		comm := 0
		for i := 0; i < b.N; i++ {
			m, st, err := cluster.Matching(context.Background(), stream.NewGraphSource(g),
				cluster.Config{Workers: addrs, Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			if m.Size() == 0 {
				b.Fatal("empty matching")
			}
			comm = st.TotalCommBytes
		}
		b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		b.ReportMetric(float64(comm), "commbytes")
	})
	b.Run("stream", func(b *testing.B) {
		comm := 0
		for i := 0; i < b.N; i++ {
			m, st, err := stream.Matching(stream.NewGraphSource(g), stream.Config{K: k, Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			if m.Size() == 0 {
				b.Fatal("empty matching")
			}
			comm = st.TotalCommBytes
		}
		b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
		b.ReportMetric(float64(comm), "commbytes")
	})
}

// BenchmarkStreamVsBatchSharding isolates the sharder: hash routing through
// the concurrent pipeline vs single-RNG RandomK on a materialized list.
func BenchmarkStreamVsBatchSharding(b *testing.B) {
	g := benchGraph(16384, 16, 22)
	b.Run("hash-stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parts, _, err := stream.Shard(stream.NewGraphSource(g), stream.Config{K: 16, Seed: 1})
			if err != nil || len(parts) != 16 {
				b.Fatal("shard failed")
			}
		}
		b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
	})
	b.Run("hash-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.HashK(g.Edges, 16, 1)
		}
		b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
	})
	b.Run("randomk-batch", func(b *testing.B) {
		r := rng.New(2)
		for i := 0; i < b.N; i++ {
			partition.RandomK(g.Edges, 16, r)
		}
		b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
	})
}

// Ablation: per-partition maximum matching via blossom vs Hopcroft-Karp on
// the same bipartite input (the auto-dispatch win called out in DESIGN.md).
func BenchmarkAblationHopcroftKarpVsBlossom(b *testing.B) {
	bip := gen.BipartiteGNP(4096, 4096, 8.0/4096, rng.New(14))
	g := bip.ToGraph()
	b.Run("hopcroft-karp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.HopcroftKarp(bip)
		}
	})
	b.Run("blossom", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.Blossom(g.N, g.Edges)
		}
	})
}

// Ablation: exact composition vs one-pass GreedyMatch at the coordinator
// (quality is compared in E1; this compares cost).
func BenchmarkAblationComposeVsGreedy(b *testing.B) {
	g := benchGraph(32768, 8, 15)
	parts := partition.RandomK(g.Edges, 16, rng.New(16))
	coresets := make([][]graph.Edge, len(parts))
	for i, p := range parts {
		coresets[i] = core.MatchingCoreset(g.N, p)
	}
	b.Run("exact-compose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ComposeMatching(g.N, coresets)
		}
	})
	b.Run("greedy-combine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GreedyMatchCombine(g.N, coresets)
		}
	})
}

// Ablation: parallel workers for the per-machine summary phase (E13's
// metric as a bench).
func BenchmarkAblationWorkers(b *testing.B) {
	g := benchGraph(32768, 8, 17)
	parts := partition.RandomK(g.Edges, 32, rng.New(18))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MapParts(parts, w, func(j int, part []graph.Edge) int {
					return len(core.MatchingCoreset(g.N, part))
				})
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s-%d", prefix, v)
}
